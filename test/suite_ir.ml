(** Tests of the IR layer: builder, CFG analyses (dominators,
    postdominators, back edges), natural-loop detection, validation, and
    the printer/parser round trip — including property tests on randomly
    generated structured programs. *)

open Ir.Types
module B = Ir.Builder
module SSet = Ir.Cfg.SSet

(* -- builders used across tests ------------------------------------------- *)

let diamond =
  B.define "diamond" ~params:[ "x" ] (fun b ->
      let c = B.gt b (Reg "x") (Int 0) in
      B.if_ b c
        ~then_:(fun () -> B.set b "y" (Int 1))
        ~else_:(fun () -> B.set b "y" (Int 2))
        ();
      B.ret b (Reg "y"))

let counted_loop =
  B.define "counted" ~params:[ "n" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ -> B.work b (Int 1));
      B.ret_unit b)

let nested_loops =
  B.define "nested" ~params:[ "n"; "m" ] (fun b ->
      B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ ->
          B.for_ b "j" ~from:(Int 0) ~below:(Reg "m") (fun _ ->
              B.work b (Int 1)));
      B.ret_unit b)

(* -- CFG ----------------------------------------------------------------- *)

let test_successors () =
  let cfg = Ir.Cfg.build diamond in
  let entry = (entry_block diamond).label in
  Alcotest.(check int) "entry has two successors" 2
    (List.length (Ir.Cfg.successors cfg entry));
  let join =
    List.find (fun b -> String.length b.label > 4 && Filename.check_suffix b.label ".join") diamond.blocks
  in
  Alcotest.(check int) "join has two predecessors" 2
    (List.length (Ir.Cfg.predecessors cfg join.label))

let test_dominators_diamond () =
  let cfg = Ir.Cfg.build diamond in
  let entry = (entry_block diamond).label in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates %s" b.label)
        true
        (Ir.Cfg.dominates cfg entry b.label))
    diamond.blocks;
  (* Neither arm dominates the join. *)
  let arm suffix =
    (List.find (fun b -> Filename.check_suffix b.label suffix) diamond.blocks).label
  in
  let join = arm ".join" in
  Alcotest.(check bool) "then arm does not dominate join" false
    (Ir.Cfg.dominates cfg (arm ".then") join);
  Alcotest.(check bool) "else arm does not dominate join" false
    (Ir.Cfg.dominates cfg (arm ".else") join)

let test_postdominator_join () =
  let cfg = Ir.Cfg.build diamond in
  let entry = (entry_block diamond).label in
  match Ir.Cfg.ipostdom cfg entry with
  | Some l ->
    Alcotest.(check bool) "branch join is the .join block" true
      (Filename.check_suffix l ".join")
  | None -> Alcotest.fail "entry must have a postdominator"

let test_back_edges () =
  let cfg = Ir.Cfg.build counted_loop in
  match Ir.Cfg.back_edges cfg with
  | [ (src, dst) ] ->
    Alcotest.(check bool) "latch is the body block" true
      (Filename.check_suffix src ".body");
    Alcotest.(check bool) "target is the header" true
      (Filename.check_suffix dst ".header")
  | l -> Alcotest.failf "expected one back edge, got %d" (List.length l)

let test_no_irreducible_from_builder () =
  List.iter
    (fun f ->
      let cfg = Ir.Cfg.build f in
      Alcotest.(check (list (pair string string)))
        (f.fname ^ " has no irreducible edges")
        []
        (Ir.Cfg.irreducible_edges cfg))
    (diamond :: counted_loop :: nested_loops :: Apps.Lulesh.program.funcs)

(* -- loops ----------------------------------------------------------------- *)

let test_loop_detection () =
  let cfg = Ir.Cfg.build nested_loops in
  let forest = Ir.Loops.detect cfg in
  Alcotest.(check int) "two loops" 2 (List.length forest.Ir.Loops.loops);
  Alcotest.(check int) "max depth 2" 2 (Ir.Loops.max_depth forest);
  let inner =
    List.find (fun (l : Ir.Loops.loop) -> l.Ir.Loops.depth = 2) forest.loops
  in
  let outer =
    List.find (fun (l : Ir.Loops.loop) -> l.Ir.Loops.depth = 1) forest.loops
  in
  Alcotest.(check (option string))
    "inner loop's parent is the outer header"
    (Some outer.Ir.Loops.header) inner.Ir.Loops.parent;
  Alcotest.(check bool) "outer body contains inner header" true
    (SSet.mem inner.Ir.Loops.header outer.Ir.Loops.body)

let test_loop_exits () =
  let cfg = Ir.Cfg.build counted_loop in
  let forest = Ir.Loops.detect cfg in
  match forest.Ir.Loops.loops with
  | [ l ] ->
    Alcotest.(check int) "one exit edge" 1 (List.length l.Ir.Loops.exits);
    Alcotest.(check (list string))
      "exiting block is the header"
      [ l.Ir.Loops.header ]
      (Ir.Loops.exiting_blocks l)
  | _ -> Alcotest.fail "expected one loop"

let test_innermost_containing () =
  let cfg = Ir.Cfg.build nested_loops in
  let forest = Ir.Loops.detect cfg in
  let inner =
    List.find (fun (l : Ir.Loops.loop) -> l.Ir.Loops.depth = 2) forest.loops
  in
  let body_block =
    SSet.elements inner.Ir.Loops.body
    |> List.find (fun l -> l <> inner.Ir.Loops.header)
  in
  match Ir.Loops.innermost_containing forest body_block with
  | Some l ->
    Alcotest.(check string) "innermost is the inner loop" inner.Ir.Loops.header
      l.Ir.Loops.header
  | None -> Alcotest.fail "block should be in a loop"

(* -- validation -------------------------------------------------------------- *)

let prog_of funcs entry = { pname = "t"; funcs; entry }

let test_validate_ok () =
  Alcotest.(check int) "no issues on lulesh" 0
    (List.length
       (Ir.Validate.errors (Ir.Validate.check_program Apps.Lulesh.program)))

let test_validate_unknown_callee () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.call_unit b "nonexistent" [];
        B.ret_unit b)
  in
  let issues = Ir.Validate.check_program (prog_of [ f ] "f") in
  Alcotest.(check bool) "unknown callee is an error" true
    (List.exists
       (fun (i : Ir.Validate.issue) -> i.severity = `Error)
       issues)

let test_validate_undefined_register () =
  let f =
    { fname = "f"; fparams = [];
      blocks = [ { label = "entry"; instrs = []; term = Return (Reg "ghost") } ] }
  in
  let issues = Ir.Validate.check_program (prog_of [ f ] "f") in
  Alcotest.(check bool) "undefined register is an error" true
    (List.exists (fun (i : Ir.Validate.issue) -> i.severity = `Error) issues)

let test_validate_dangling_jump () =
  let f =
    { fname = "f"; fparams = [];
      blocks = [ { label = "entry"; instrs = []; term = Jump "nowhere" } ] }
  in
  let issues = Ir.Validate.check_program (prog_of [ f ] "f") in
  Alcotest.(check bool) "dangling jump is an error" true
    (List.exists (fun (i : Ir.Validate.issue) -> i.severity = `Error) issues)

let test_validate_missing_entry () =
  let issues = Ir.Validate.check_program (prog_of [ diamond ] "main") in
  Alcotest.(check bool) "missing entry is an error" true
    (List.exists (fun (i : Ir.Validate.issue) -> i.severity = `Error) issues)

let test_validate_unreachable_warning () =
  let f =
    { fname = "f"; fparams = [];
      blocks =
        [ { label = "entry"; instrs = []; term = Return Unit };
          { label = "orphan"; instrs = []; term = Return Unit } ] }
  in
  let issues = Ir.Validate.check_program (prog_of [ f ] "f") in
  Alcotest.(check bool) "unreachable block is a warning" true
    (List.exists (fun (i : Ir.Validate.issue) -> i.severity = `Warning) issues)

(* -- builder ------------------------------------------------------------------ *)

let test_builder_for_shape () =
  (* for_ emits header/body/exit with the canonical compare in the header. *)
  let header =
    List.find
      (fun b -> Filename.check_suffix b.label ".header")
      counted_loop.blocks
  in
  (match header.term with
  | Branch (Reg _, t, e) ->
    Alcotest.(check bool) "then goes to body" true (Filename.check_suffix t ".body");
    Alcotest.(check bool) "else goes to exit" true (Filename.check_suffix e ".exit")
  | _ -> Alcotest.fail "header must end in a conditional branch");
  match header.instrs with
  | [ Binop (_, Lt, Reg _, Reg "n") ] -> ()
  | _ -> Alcotest.fail "header must contain exactly the bound comparison"

let test_builder_double_terminator_rejected () =
  let b = B.create "f" ~params:[] in
  B.ret_unit b;
  Alcotest.check_raises "second terminator raises"
    (Ir_error "double terminator in f") (fun () -> B.ret_unit b)

let test_builder_repeat () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.repeat b (Int 3) (fun () -> B.work b (Int 1));
        B.ret_unit b)
  in
  let m = Interp.Machine.create (prog_of [ f ] "f") in
  let _ = Interp.Machine.run m [] in
  let fo = Interp.Observations.func_obs (Interp.Machine.observations m) "f" in
  Alcotest.(check int) "3 work units" 3 fo.Interp.Observations.fo_work

(* -- printer / parser ----------------------------------------------------------- *)

let test_roundtrip_fixed () =
  List.iter
    (fun p ->
      let s1 = Ir.Pp.program_to_string p in
      let s2 = Ir.Pp.program_to_string (Ir.Parser.parse s1) in
      Alcotest.(check string) ("round trip " ^ p.pname) s1 s2)
    [ Apps.Didactic.iterate_example; Apps.Didactic.foo_example;
      Apps.Didactic.matrix_init; Apps.Didactic.algorithm_selection;
      Apps.Didactic.control_dependence; Apps.Lulesh.program;
      Apps.Milc.program ]

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_parse_error_reported () =
  (try
     ignore (Ir.Parser.parse "func @f( {\n");
     Alcotest.fail "expected parse error"
   with Ir.Parser.Parse_error _ -> ());
  try
    ignore (Ir.Parser.parse "func @f() {\nentry:\n  %x = frobnicate %y\n  ret ()\n}");
    Alcotest.fail "expected parse error for unknown opcode"
  with Ir.Parser.Parse_error { message; _ } ->
    Alcotest.(check bool) "mentions opcode" true
      (string_contains message "frobnicate")

let test_parse_literals () =
  let p =
    Ir.Parser.parse
      "func @f(a) {\nentry:\n  %x = -5\n  %y = 2.5\n  %z = true\n  %w = ()\n  %s = fadd %y, 1.5e-3\n  ret %x\n}"
  in
  let f = find_func p "f" in
  let instrs = (entry_block f).instrs in
  Alcotest.(check int) "five instructions" 5 (List.length instrs);
  (match List.nth instrs 0 with
  | Assign ("x", Int (-5)) -> ()
  | i -> Alcotest.failf "bad negative int: %s" (Fmt.str "%a" Ir.Pp.pp_instr i));
  (match List.nth instrs 1 with
  | Assign ("y", Float 2.5) -> ()
  | i -> Alcotest.failf "bad float: %s" (Fmt.str "%a" Ir.Pp.pp_instr i));
  (match List.nth instrs 2 with
  | Assign ("z", Bool true) -> ()
  | i -> Alcotest.failf "bad bool: %s" (Fmt.str "%a" Ir.Pp.pp_instr i));
  (match List.nth instrs 3 with
  | Assign ("w", Unit) -> ()
  | i -> Alcotest.failf "bad unit: %s" (Fmt.str "%a" Ir.Pp.pp_instr i));
  match List.nth instrs 4 with
  | Binop ("s", FAdd, Reg "y", Float 1.5e-3) -> ()
  | i -> Alcotest.failf "bad scientific float: %s" (Fmt.str "%a" Ir.Pp.pp_instr i)

let test_parse_comments_and_blanks () =
  let p =
    Ir.Parser.parse
      "; a comment\n\nfunc @f() { ; trailing comment\nentry:\n  ; inner\n  ret ()\n}\n"
  in
  Alcotest.(check int) "one function" 1 (List.length p.funcs)

let test_parse_call_no_args () =
  let p =
    Ir.Parser.parse
      "func @g() {\nentry:\n  ret ()\n}\nfunc @f() {\nentry:\n  call @g()\n  %r = call @g()\n  ret %r\n}"
  in
  let f = find_func p "f" in
  Alcotest.(check int) "two calls" 2 (List.length (entry_block f).instrs)

let test_parse_header () =
  let p = Ir.Parser.parse "; program myapp (entry @start)\nfunc @start() {\nentry:\n  ret ()\n}" in
  Alcotest.(check string) "program name" "myapp" p.pname;
  Alcotest.(check string) "entry" "start" p.entry

(* -- printer/parser edge cases --------------------------------------------- *)

let roundtrip_operand op =
  (* One-instruction program carrying the operand; parse back the printed
     form and extract the operand again. *)
  let p =
    { pname = "t"; entry = "f";
      funcs =
        [ { fname = "f"; fparams = [];
            blocks =
              [ { label = "entry"; instrs = [ Assign ("x", op) ];
                  term = Return Unit } ] } ] }
  in
  let p' = Ir.Parser.parse (Ir.Pp.program_to_string p) in
  match (entry_block (find_func p' "f")).instrs with
  | [ Assign ("x", op') ] -> op'
  | _ -> Alcotest.fail "round trip lost the instruction"

let test_float_literals_roundtrip () =
  (* %g alone would print 1.0 as "1", which reparses as the *integer* 1 —
     the literal printer must keep the kind. *)
  List.iter
    (fun f ->
      match roundtrip_operand (Float f) with
      | Float f' ->
        Alcotest.(check bool)
          (Printf.sprintf "float %h survives" f)
          true
          (Int64.bits_of_float f = Int64.bits_of_float f')
      | op ->
        Alcotest.failf "float %h reparsed as %s" f
          (Fmt.str "%a" Ir.Pp.pp_operand op))
    [ 1.0; -0.0; 0.0; 2.5; 1e300; 1e-300; -17.; 0.1; 3.14159265358979312;
      1.5e-3; 1e22 ]

let test_special_float_literals () =
  (match roundtrip_operand (Float Float.nan) with
  | Float f -> Alcotest.(check bool) "nan survives" true (Float.is_nan f)
  | _ -> Alcotest.fail "nan lost its kind");
  (match roundtrip_operand (Float Float.infinity) with
  | Float f -> Alcotest.(check bool) "inf survives" true (f = Float.infinity)
  | _ -> Alcotest.fail "inf lost its kind");
  (match roundtrip_operand (Float Float.neg_infinity) with
  | Float f -> Alcotest.(check bool) "-inf survives" true (f = Float.neg_infinity)
  | _ -> Alcotest.fail "-inf lost its kind");
  Alcotest.(check string) "nan literal" "nan" (Ir.Pp.float_literal Float.nan);
  Alcotest.(check string) "1.0 keeps a float marker" "1."
    (Ir.Pp.float_literal 1.0)

let prop_float_literal_roundtrip =
  QCheck.Test.make ~count:500 ~name:"float literals round trip bit-exactly"
    QCheck.float (fun f ->
      match roundtrip_operand (Float f) with
      | Float f' ->
        Float.is_nan f' && Float.is_nan f
        || Int64.bits_of_float f = Int64.bits_of_float f'
      | _ -> false)

let test_long_identifiers () =
  (* Maximal-length names: registers, functions, labels survive printing
     and reparsing unchanged. *)
  let long = String.make 200 'x' in
  let f =
    B.define long ~params:[ long ^ "p" ] (fun b ->
        B.set b long (Reg (long ^ "p"));
        B.ret b (Reg long))
  in
  let p = prog_of [ f ] long in
  let p' = Ir.Parser.parse (Ir.Pp.program_to_string p) in
  Alcotest.(check string) "entry name" long p'.entry;
  Alcotest.(check bool) "program round trips" true (compare p p' = 0)

let test_parse_error_line_numbers () =
  let expect_line n src =
    try
      ignore (Ir.Parser.parse src);
      Alcotest.fail "expected a parse error"
    with Ir.Parser.Parse_error { line; _ } ->
      Alcotest.(check int) "error line" n line
  in
  expect_line 3 "func @f() {\nentry:\n  %x = frobnicate %y\n  ret ()\n}";
  expect_line 4 "func @f() {\nentry:\n  %x = 1\n  %y = add %x\n  ret ()\n}";
  expect_line 1 "garbage"

(* -- random structured programs (properties) ----------------------------------- *)

(* Random programs come from the shared lib/fuzz grammar (calls, memory
   aliasing, floats, irregular nests, tainted branches), so these
   properties cover far more CFG shapes than the old local work/if/for
   tree — and failures shrink structurally. *)
let prop_random_programs_valid =
  QCheck.Test.make ~count:200 ~name:"builder output always validates"
    Fuzz.Shrink.arbitrary (fun prog ->
      let p = Fuzz.Gen.to_program prog in
      Ir.Validate.errors (Ir.Validate.check_program p) = [])

let prop_random_programs_roundtrip =
  QCheck.Test.make ~count:200 ~name:"pp/parse round trip on random programs"
    Fuzz.Shrink.arbitrary (fun prog ->
      let p = Fuzz.Gen.to_program prog in
      let s1 = Ir.Pp.program_to_string p in
      Ir.Pp.program_to_string (Ir.Parser.parse s1) = s1)

let prop_dominators_reflexive_entry =
  QCheck.Test.make ~count:100 ~name:"entry dominates every reachable block"
    Fuzz.Shrink.arbitrary (fun prog ->
      let p = Fuzz.Gen.to_program prog in
      List.for_all
        (fun f ->
          let cfg = Ir.Cfg.build f in
          List.for_all
            (fun l -> Ir.Cfg.dominates cfg (entry_block f).label l)
            (Ir.Cfg.reachable_labels cfg))
        p.funcs)

(* Brute-force dominance: a dominates b iff b is unreachable from the
   entry once a is removed from the graph. *)
let brute_dominates f a b =
  if a = b then true
  else begin
    let cfg = Ir.Cfg.build f in
    let entry = (entry_block f).label in
    if a = entry then true
    else begin
      let seen = Hashtbl.create 16 in
      let rec go l =
        if l <> a && not (Hashtbl.mem seen l) then begin
          Hashtbl.add seen l ();
          List.iter go (Ir.Cfg.successors cfg l)
        end
      in
      go entry;
      not (Hashtbl.mem seen b)
    end
  end

let prop_dominators_match_brute_force =
  QCheck.Test.make ~count:60 ~name:"CHK dominators match brute force"
    Fuzz.Shrink.arbitrary (fun prog ->
      let p = Fuzz.Gen.to_program prog in
      List.for_all
        (fun f ->
          let cfg = Ir.Cfg.build f in
          let labels = Ir.Cfg.reachable_labels cfg in
          List.for_all
            (fun a ->
              List.for_all
                (fun b -> Ir.Cfg.dominates cfg a b = brute_dominates f a b)
                labels)
            labels)
        p.funcs)

(* The parser must never raise anything except Parse_error, even on
   garbage or mutated programs. *)
let prop_parser_total_on_garbage =
  QCheck.Test.make ~count:300 ~name:"parser is total on garbage input"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun s ->
      match Ir.Parser.parse s with
      | _ -> true
      | exception Ir.Parser.Parse_error _ -> true)

let prop_parser_total_on_mutations =
  QCheck.Test.make ~count:200 ~name:"parser is total on mutated programs"
    QCheck.(pair Fuzz.Shrink.arbitrary (pair small_nat printable_char))
    (fun (prog, (pos, c)) ->
      let s = Ir.Pp.program_to_string (Fuzz.Gen.to_program prog) in
      let s =
        if String.length s = 0 then s
        else begin
          let b = Bytes.of_string s in
          Bytes.set b (pos mod String.length s) c;
          Bytes.to_string b
        end
      in
      match Ir.Parser.parse s with
      | _ -> true
      | exception Ir.Parser.Parse_error _ -> true
      | exception Ir.Types.Ir_error _ -> true)

let prop_loop_bodies_nest =
  QCheck.Test.make ~count:100
    ~name:"loop forest: child bodies are subsets of parent bodies"
    Fuzz.Shrink.arbitrary (fun prog ->
      let p = Fuzz.Gen.to_program prog in
      List.for_all
        (fun f ->
          let forest = Ir.Loops.detect (Ir.Cfg.build f) in
          List.for_all
            (fun (l : Ir.Loops.loop) ->
              match l.Ir.Loops.parent with
              | None -> true
              | Some parent -> (
                match Ir.Loops.find forest parent with
                | Some pl -> SSet.subset l.Ir.Loops.body pl.Ir.Loops.body
                | None -> false))
            forest.Ir.Loops.loops)
        p.funcs)

let tests =
  [
    Alcotest.test_case "cfg successors/predecessors" `Quick test_successors;
    Alcotest.test_case "dominators on a diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "postdominator is the join" `Quick test_postdominator_join;
    Alcotest.test_case "back edge of a counted loop" `Quick test_back_edges;
    Alcotest.test_case "builder CFGs are reducible" `Quick
      test_no_irreducible_from_builder;
    Alcotest.test_case "nested loop forest" `Quick test_loop_detection;
    Alcotest.test_case "loop exits" `Quick test_loop_exits;
    Alcotest.test_case "innermost containing loop" `Quick
      test_innermost_containing;
    Alcotest.test_case "validate: lulesh is clean" `Quick test_validate_ok;
    Alcotest.test_case "validate: unknown callee" `Quick
      test_validate_unknown_callee;
    Alcotest.test_case "validate: undefined register" `Quick
      test_validate_undefined_register;
    Alcotest.test_case "validate: dangling jump" `Quick
      test_validate_dangling_jump;
    Alcotest.test_case "validate: missing entry" `Quick
      test_validate_missing_entry;
    Alcotest.test_case "validate: unreachable warning" `Quick
      test_validate_unreachable_warning;
    Alcotest.test_case "builder emits canonical for_ shape" `Quick
      test_builder_for_shape;
    Alcotest.test_case "builder rejects double terminator" `Quick
      test_builder_double_terminator_rejected;
    Alcotest.test_case "builder repeat" `Quick test_builder_repeat;
    Alcotest.test_case "pp/parse round trip (apps)" `Quick test_roundtrip_fixed;
    Alcotest.test_case "parse errors are reported" `Quick
      test_parse_error_reported;
    Alcotest.test_case "parse header comment" `Quick test_parse_header;
    Alcotest.test_case "parse literal forms" `Quick test_parse_literals;
    Alcotest.test_case "parse comments and blank lines" `Quick
      test_parse_comments_and_blanks;
    Alcotest.test_case "parse zero-argument calls" `Quick
      test_parse_call_no_args;
    Alcotest.test_case "float literals keep their kind" `Quick
      test_float_literals_roundtrip;
    Alcotest.test_case "nan/inf/-inf literals" `Quick
      test_special_float_literals;
    Alcotest.test_case "maximal-length identifiers" `Quick
      test_long_identifiers;
    Alcotest.test_case "parse errors carry line numbers" `Quick
      test_parse_error_line_numbers;
    Seeded.to_alcotest prop_float_literal_roundtrip;
    Seeded.to_alcotest prop_random_programs_valid;
    Seeded.to_alcotest prop_random_programs_roundtrip;
    Seeded.to_alcotest prop_dominators_reflexive_entry;
    Seeded.to_alcotest prop_dominators_match_brute_force;
    Seeded.to_alcotest prop_parser_total_on_garbage;
    Seeded.to_alcotest prop_parser_total_on_mutations;
    Seeded.to_alcotest prop_loop_bodies_nest;
  ]
