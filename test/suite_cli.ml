(** End-to-end tests of the CLI's failure paths: every anticipated error
    — unknown app, unreadable path, parse error, malformed IR, runtime
    error, exhausted step budget, bad fault spec — must surface as a
    single-line message on stderr and a nonzero exit code, never as an
    uncaught exception with a backtrace. *)

(* Under `dune runtest` the cwd is _build/default/test and the binary is
   a declared dependency at ../bin/; under `dune exec` it is the project
   root. *)
let exe =
  List.find Sys.file_exists
    [ "../bin/perf_taint_cli.exe"; "_build/default/bin/perf_taint_cli.exe" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_cli args =
  let out = Filename.temp_file "cli" ".out" in
  let err = Filename.temp_file "cli" ".err" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove out with Sys_error _ -> ());
      try Sys.remove err with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:err)
      in
      (code, read_file out, read_file err))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let line_count s =
  List.length
    (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))

(* The contract under test: nonzero exit, exactly one stderr line
   mentioning [expect], and no escaped exception. *)
let check_failure ?(lines = 1) ~expect args =
  let code, _out, errs = run_cli args in
  Alcotest.(check bool)
    (Printf.sprintf "nonzero exit for %s" (String.concat " " args))
    true (code <> 0);
  Alcotest.(check int)
    (Printf.sprintf "single-line stderr, got %S" errs)
    lines (line_count errs);
  Alcotest.(check bool)
    (Printf.sprintf "stderr %S mentions %S" errs expect)
    true
    (contains errs expect);
  List.iter
    (fun leak ->
      Alcotest.(check bool)
        (Printf.sprintf "no %S in stderr" leak)
        false (contains errs leak))
    [ "Raised at"; "Raised by"; "Fatal error: exception" ]

let with_fixture contents f =
  let path = Filename.temp_file "cli_fixture" ".pir" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_success_baseline () =
  let code, out, _ = run_cli [ "print"; "iterate" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints the program" true (contains out "func @")

let test_unknown_app () =
  check_failure ~expect:"unknown app" [ "analyze"; "nosuchapp" ]

let test_directory_path () =
  (* [Sys.file_exists] accepts a directory; it must be diagnosed, not
     opened. *)
  check_failure ~expect:"is a directory" [ "analyze"; "." ]

let test_unreadable_file () =
  (* A path that vanishes between the existence check and the open still
     surfaces as a clean Sys_error line. *)
  with_fixture "func @main() {\nentry:\n  ret ()\n}\n" @@ fun path ->
  Sys.remove path;
  check_failure ~expect:"unknown app" [ "analyze"; path ]

let test_parse_error () =
  with_fixture "; program broken (entry @main)\nfunc @main( {\n"
  @@ fun path ->
  check_failure ~expect:"parse error at line" [ "analyze"; path ]

let test_unknown_opcode () =
  with_fixture
    "func @main(n) {\nentry:\n  %x = frobnicate %n\n  ret %x\n}\n"
  @@ fun path -> check_failure ~expect:"parse error" [ "analyze"; path ]

let test_ir_error () =
  (* Parses fine; calling an undefined function is an IR-level error
     raised during the tainted run. *)
  with_fixture "func @main(n) {\nentry:\n  call @nope()\n  ret ()\n}\n"
  @@ fun path -> check_failure ~expect:"nope" [ "analyze"; path ]

let test_runtime_error () =
  with_fixture "func @main(n) {\nentry:\n  %z = div %n, 0\n  ret %z\n}\n"
  @@ fun path ->
  check_failure ~expect:"division by zero" [ "analyze"; path ]

let test_budget_exceeded () =
  check_failure ~expect:"--max-steps"
    [ "analyze"; "lulesh"; "--max-steps"; "10" ]

let test_bad_fault_spec () =
  check_failure ~expect:"frobnicate"
    [ "campaign"; "lulesh"; "--faults"; "frobnicate=1" ]

let test_campaign_needs_spec () =
  check_failure ~expect:"measurement spec" [ "campaign"; "iterate" ]

let test_resume_needs_journal () =
  check_failure ~expect:"--journal" [ "campaign"; "lulesh"; "--resume" ]

(* -- resume from a damaged or foreign journal --------------------------------
   The two refusal paths a real recovery hits: a journal from a
   different campaign (wrong identity header) and a journal corrupted
   mid-file.  Both must be one clean stderr line, not a backtrace. *)

let with_temp_journal f =
  let path = Filename.temp_file "cli_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let seed_journal ~seed journal =
  let code, _, errs =
    run_cli
      [ "campaign"; "minicg"; "--reps"; "1"; "--max-runs"; "2"; "--journal";
        journal; "--seed"; string_of_int seed ]
  in
  Alcotest.(check int) (Printf.sprintf "seeding run ok: %s" errs) 0 code

let test_resume_rejects_foreign_journal () =
  with_temp_journal @@ fun journal ->
  seed_journal ~seed:42 journal;
  check_failure ~expect:"journal header does not match this campaign"
    [ "campaign"; "minicg"; "--reps"; "1"; "--journal"; journal; "--resume";
      "--seed"; "43" ]

let test_resume_rejects_corrupt_journal () =
  with_temp_journal @@ fun journal ->
  seed_journal ~seed:42 journal;
  (* Damage a record line that is not the trailing one: corruption, not
     a torn flush, so the resume must refuse. *)
  let lines = String.split_on_char '\n' (read_file journal) in
  let oc = open_out_bin journal in
  List.iteri
    (fun i l ->
      if l <> "" then begin
        output_string oc (if i = 1 then "{\"params\":" else l);
        output_char oc '\n'
      end)
    lines;
  close_out oc;
  check_failure ~expect:"bad journal line"
    [ "campaign"; "minicg"; "--reps"; "1"; "--journal"; journal; "--resume";
      "--seed"; "42" ]

(* -- sharding flag validation ------------------------------------------------- *)

let test_shard_flag_validation () =
  check_failure ~expect:"--journal"
    [ "campaign"; "minicg"; "--shards"; "2" ];
  check_failure ~expect:"bad shard spec"
    [ "campaign"; "minicg"; "--shard"; "3"; "--journal"; "/tmp/x.jsonl" ];
  check_failure ~expect:"mutually exclusive"
    [ "campaign"; "minicg"; "--shards"; "2"; "--shard"; "0/2"; "--journal";
      "/tmp/x.jsonl" ];
  check_failure ~expect:"--kill-shard requires --shards"
    [ "campaign"; "minicg"; "--kill-shard"; "0=1" ];
  check_failure ~expect:"--max-runs"
    [ "campaign"; "minicg"; "--shards"; "2"; "--max-runs"; "3"; "--journal";
      "/tmp/x.jsonl" ]

(* -- tier identity ----------------------------------------------------------
   The lowering pass resolves names at compile time but its traps are
   lazy and carry the interpreter's exact exception: for any program,
   failing or not, `--engine compiled` and `--engine interp` must be
   byte-identical on exit code, stdout and stderr. *)

let check_tier_identity ?expect args =
  let cc, co, ce = run_cli (args @ [ "--engine"; "compiled" ]) in
  let ic, io, ie = run_cli (args @ [ "--engine"; "interp" ]) in
  let label = String.concat " " args in
  Alcotest.(check int) (label ^ ": same exit code") ic cc;
  Alcotest.(check string) (label ^ ": same stdout") io co;
  Alcotest.(check string) (label ^ ": same stderr") ie ce;
  match expect with
  | None -> ()
  | Some needle ->
    Alcotest.(check bool)
      (Printf.sprintf "stderr %S mentions %S" ce needle)
      true (contains ce needle)

let test_engine_unknown_function_identical () =
  with_fixture "func @main(n) {\nentry:\n  call @nope()\n  ret ()\n}\n"
  @@ fun path ->
  check_tier_identity ~expect:"unknown function nope" [ "run"; path ]

let test_engine_unknown_block_identical () =
  (* `run` skips the static validator, so the unknown label surfaces as
     the engine's own trap — precomputed by the lowering pass, raised
     only when the jump executes. *)
  with_fixture "func @main(n) {\nentry:\n  jump missing\n}\n" @@ fun path ->
  check_tier_identity ~expect:"unknown block missing in main" [ "run"; path ]

let test_engine_unknown_prim_identical () =
  with_fixture "func @main(n) {\nentry:\n  %x = prim !frob()\n  ret %x\n}\n"
  @@ fun path ->
  check_tier_identity ~expect:"unknown primitive !frob" [ "run"; path ]

let test_engine_runtime_and_budget_identical () =
  with_fixture "func @main(n) {\nentry:\n  %z = div %n, 0\n  ret %z\n}\n"
    (fun path ->
      check_tier_identity ~expect:"division by zero" [ "run"; path ]);
  check_tier_identity ~expect:"--max-steps"
    [ "run"; "lulesh"; "--max-steps"; "10" ]

let test_engine_success_identical () =
  List.iter
    (fun app -> check_tier_identity [ "run"; app ])
    [ "iterate"; "matrix"; "foo" ]

let test_engine_rejects_bad_tier () =
  let code, _out, errs =
    run_cli [ "run"; "iterate"; "--engine"; "frobnicated" ]
  in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  Alcotest.(check bool)
    (Printf.sprintf "stderr %S names the flag" errs)
    true (contains errs "--engine")

(* -- serve daemon failure modes ----------------------------------------------
   The daemon's contract under abuse: a missing catalog directory is a
   clean one-line refusal naming the path; binding a socket that already
   has a live daemon behind it is refused; and a malformed request line
   gets a one-line JSON error while the connection (and the daemon)
   survive to answer the next request. *)

let with_tmp_catalog f =
  let dir = Filename.temp_file "cli_catalog" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let with_daemon ~catalog ~socket f =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let errfile = Filename.temp_file "cli_daemon" ".err" in
  let errfd =
    Unix.openfile errfile [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--catalog"; catalog; "--socket"; socket |]
      devnull devnull errfd
  in
  Unix.close devnull;
  Unix.close errfd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Sys.remove errfile with Sys_error _ -> ())
    (fun () -> f pid)

let query socket requests = run_cli ([ "query"; "--socket"; socket ] @ requests)

let test_serve_unknown_catalog_dir () =
  let missing =
    Filename.concat (Filename.get_temp_dir_name ()) "no-such-catalog-dir"
  in
  let code, _out, errs =
    run_cli [ "serve"; "--catalog"; missing; "--socket"; "/tmp/unused.sock" ]
  in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  Alcotest.(check bool)
    (Printf.sprintf "stderr %S names the missing directory" errs)
    true (contains errs missing);
  Alcotest.(check bool) "no backtrace" false (contains errs "Raised at")

let test_serve_daemon_contracts () =
  with_tmp_catalog @@ fun catalog ->
  let socket = Filename.temp_file "cli_serve" ".sock" in
  Sys.remove socket;
  with_daemon ~catalog ~socket @@ fun _pid ->
  (* wait for the daemon: stats answers once it is listening *)
  let code, out, errs = query socket [ {|{"op":"stats"}|} ] in
  Alcotest.(check int) (Printf.sprintf "daemon up: %s" errs) 0 code;
  Alcotest.(check bool) "stats answered" true (contains out {|"ok":true|});
  (* a second daemon on the same live socket must refuse by name *)
  check_failure ~expect:socket
    [ "serve"; "--catalog"; catalog; "--socket"; socket ];
  (* a malformed request gets a one-line JSON error and the connection
     survives it: the stats on the same connection still answers *)
  let code, out, errs = query socket [ "{\"op\":"; {|{"op":"stats"}|} ] in
  Alcotest.(check int) (Printf.sprintf "query ok: %s" errs) 0 code;
  (match
     List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
   with
  | [ bad; good ] ->
    Alcotest.(check bool)
      (Printf.sprintf "malformed line answered with a JSON error: %s" bad)
      true
      (contains bad {|"ok":false|} && contains bad {|"error"|});
    Alcotest.(check bool) "connection survived to the next request" true
      (contains good {|"ok":true|})
  | ls ->
    Alcotest.fail
      (Printf.sprintf "expected 2 responses, got %d: %s" (List.length ls) out));
  (* clean shutdown: the daemon acknowledges and exits *)
  let code, out, _ = query socket [ {|{"op":"shutdown"}|} ] in
  Alcotest.(check int) "shutdown request ok" 0 code;
  Alcotest.(check bool) "shutdown acknowledged" true
    (contains out {|"ok":true|})

let tests =
  [
    Alcotest.test_case "success baseline exits 0" `Quick test_success_baseline;
    Alcotest.test_case "tier-identical unknown-function error" `Quick
      test_engine_unknown_function_identical;
    Alcotest.test_case "tier-identical unknown-block error" `Quick
      test_engine_unknown_block_identical;
    Alcotest.test_case "tier-identical unknown-prim error" `Quick
      test_engine_unknown_prim_identical;
    Alcotest.test_case "tier-identical runtime/budget errors" `Quick
      test_engine_runtime_and_budget_identical;
    Alcotest.test_case "tier-identical run output" `Quick
      test_engine_success_identical;
    Alcotest.test_case "--engine rejects unknown tiers" `Quick
      test_engine_rejects_bad_tier;
    Alcotest.test_case "unknown app" `Quick test_unknown_app;
    Alcotest.test_case "directory as program path" `Quick test_directory_path;
    Alcotest.test_case "vanished program path" `Quick test_unreadable_file;
    Alcotest.test_case "truncated program" `Quick test_parse_error;
    Alcotest.test_case "unknown opcode" `Quick test_unknown_opcode;
    Alcotest.test_case "undefined callee" `Quick test_ir_error;
    Alcotest.test_case "runtime error" `Quick test_runtime_error;
    Alcotest.test_case "step budget exceeded" `Quick test_budget_exceeded;
    Alcotest.test_case "malformed fault spec" `Quick test_bad_fault_spec;
    Alcotest.test_case "campaign rejects spec-less apps" `Quick
      test_campaign_needs_spec;
    Alcotest.test_case "--resume requires --journal" `Quick
      test_resume_needs_journal;
    Alcotest.test_case "resume rejects a foreign journal" `Quick
      test_resume_rejects_foreign_journal;
    Alcotest.test_case "resume rejects a corrupt journal" `Quick
      test_resume_rejects_corrupt_journal;
    Alcotest.test_case "shard flags validated" `Quick
      test_shard_flag_validation;
    Alcotest.test_case "serve refuses a missing catalog dir" `Quick
      test_serve_unknown_catalog_dir;
    Alcotest.test_case "serve daemon survives abuse" `Quick
      test_serve_daemon_contracts;
  ]
