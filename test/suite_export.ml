(** Tests of the JSON export: escaping, structure, and a validity check
    of the full analysis report (balanced braces, parsable by a tiny
    recogniser). *)

module J = Perf_taint.Export

let str j = J.to_string j

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_scalars () =
  Alcotest.(check string) "null" "null" (str J.Null);
  Alcotest.(check string) "true" "true" (str (J.Bool true));
  Alcotest.(check string) "int" "42" (str (J.Int 42));
  Alcotest.(check string) "float" "1.5" (str (J.Float 1.5));
  Alcotest.(check string) "integral float" "3.0" (str (J.Float 3.));
  Alcotest.(check string) "nan becomes null" "null" (str (J.Float Float.nan))

let test_non_finite_floats () =
  (* "inf"/"nan" are not JSON tokens: every non-finite float must emit
     null, also nested inside structures. *)
  Alcotest.(check string) "+inf becomes null" "null" (str (J.Float Float.infinity));
  Alcotest.(check string) "-inf becomes null" "null"
    (str (J.Float Float.neg_infinity));
  Alcotest.(check string) "huge finite survives" "1e+300" (str (J.Float 1e300));
  let s =
    str
      (J.Obj
         [ ("a", J.Float Float.nan);
           ("b", J.List [ J.Float Float.infinity; J.Float 2. ]) ])
  in
  Alcotest.(check bool) "no inf token" false (contains s "inf");
  Alcotest.(check bool) "no nan token" false (contains s "nan")

let test_escaping () =
  Alcotest.(check string) "quotes" "\"a\\\"b\"" (str (J.String "a\"b"));
  Alcotest.(check string) "backslash" "\"a\\\\b\"" (str (J.String "a\\b"));
  Alcotest.(check string) "newline" "\"a\\nb\"" (str (J.String "a\nb"));
  Alcotest.(check string) "carriage return" "\"a\\rb\"" (str (J.String "a\rb"));
  Alcotest.(check string) "tab" "\"a\\tb\"" (str (J.String "a\tb"));
  Alcotest.(check string) "control chars take the \\u path" "\"a\\u0001\\u001fb\""
    (str (J.String "a\x01\x1fb"));
  (* Non-ASCII bytes pass through untouched: the emitter writes UTF-8
     strings byte for byte. *)
  Alcotest.(check string) "utf-8 passthrough" "\"\xc3\xa9\""
    (str (J.String "\xc3\xa9"));
  (* Keys are escaped with the same machinery as values. *)
  Alcotest.(check string) "escaped key" "{\"a\\nb\": 1}"
    (str (J.Obj [ ("a\nb", J.Int 1) ]))

let test_structure () =
  let j = J.Obj [ ("xs", J.List [ J.Int 1; J.Int 2 ]); ("k", J.String "v") ] in
  let s = str j in
  Alcotest.(check bool) "contains key" true (contains s "\"xs\":")

(* A minimal JSON well-formedness recogniser (strings, escapes, nesting). *)
let json_well_formed s =
  let n = String.length s in
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iteri
    (fun _ c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  ignore n;
  !ok && !depth = 0 && not !in_str

let test_model_json () =
  let m =
    { Model.Expr.const = 1.5;
      terms =
        [ { Model.Expr.coeff = 2.;
            factors = [ ("p", { Model.Expr.expo = 0.5; logexp = 1 }) ] } ] }
  in
  let s = str (J.model_json m) in
  Alcotest.(check bool) "well formed" true (json_well_formed s);
  Alcotest.(check bool) "has coefficient" true
    (contains s "\"coefficient\": 2.0")

let test_analysis_json_well_formed () =
  let t =
    Perf_taint.Pipeline.analyze ~world:Apps.Lulesh.taint_world
      Apps.Lulesh.program ~args:Apps.Lulesh.taint_args
  in
  let s = str (J.analysis_json t ~model_params:[ "p"; "size" ]) in
  Alcotest.(check bool) "lulesh report well formed" true (json_well_formed s);
  Alcotest.(check bool) "mentions CalcQ" true
    (contains s "calc_q_for_elems")

let test_dataset_json () =
  let data =
    Model.Dataset.of_rows [ "p" ]
      [ ([ ("p", 2.) ], [ 1.; 1.1 ]); ([ ("p", 4.) ], [ 2. ]) ]
  in
  let s = str (J.dataset_json data) in
  Alcotest.(check bool) "well formed" true (json_well_formed s);
  Alcotest.(check bool) "has measurements" true
    (contains s "\"measurements\"")

let tests =
  [
    Alcotest.test_case "scalar emission" `Quick test_scalars;
    Alcotest.test_case "non-finite floats" `Quick test_non_finite_floats;
    Alcotest.test_case "string escaping" `Quick test_escaping;
    Alcotest.test_case "object structure" `Quick test_structure;
    Alcotest.test_case "model json" `Quick test_model_json;
    Alcotest.test_case "full analysis report" `Quick
      test_analysis_json_well_formed;
    Alcotest.test_case "dataset json" `Quick test_dataset_json;
  ]
