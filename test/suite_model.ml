(** Unit and property tests of the Extra-P reimplementation: regression
    exactness, PMNF recovery of planted single- and multi-parameter
    models, and the search-space constraints used by the hybrid mode. *)

module E = Model.Expr
module S = Model.Search
module D = Model.Dataset

let term ?(logexp = 0) expo = { E.expo; logexp }

let check_shape msg expected (r : S.result) =
  if not (E.same_shape expected r.model) then
    Alcotest.failf "%s: expected shape %s, got %s" msg (E.to_string expected)
      (E.to_string r.model)

let check_close msg expected actual =
  if Float.abs (expected -. actual) > 1e-6 *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* -- linear algebra ------------------------------------------------------- *)

let test_solve_exact () =
  (* 2x + y = 5; x - y = 1  ->  x = 2, y = 1 *)
  match Model.Linalg.solve [| [| 2.; 1. |]; [| 1.; -1. |] |] [| 5.; 1. |] with
  | Some x ->
    check_close "x" 2. x.(0);
    check_close "y" 1. x.(1)
  | None -> Alcotest.fail "system should be solvable"

let test_solve_singular () =
  match Model.Linalg.solve [| [| 1.; 1. |]; [| 2.; 2. |] |] [| 1.; 2. |] with
  | None -> ()
  | Some _ -> Alcotest.fail "singular system must be rejected"

let test_least_squares_line () =
  (* y = 3 + 2x fitted from exact points. *)
  let design = Array.of_list (List.map (fun x -> [| 1.; x |]) [ 1.; 2.; 3.; 5. ]) in
  let y = Array.map (fun r -> 3. +. (2. *. r.(1))) design in
  match Model.Linalg.least_squares design y with
  | Some c ->
    check_close "intercept" 3. c.(0);
    check_close "slope" 2. c.(1)
  | None -> Alcotest.fail "least squares failed"

(* -- single-parameter recovery -------------------------------------------- *)

let samples_of f xs = List.map (fun x -> (x, f x)) xs

let xs = [ 4.; 8.; 16.; 32.; 64. ]

let test_recover_linear () =
  let r = S.single ~param:"p" (samples_of (fun x -> 5. +. (0.5 *. x)) xs) in
  check_shape "linear" { E.const = 0.; terms = [ { coeff = 1.; factors = [ ("p", term 1.) ] } ] } r

let test_recover_quadratic () =
  let r = S.single ~param:"n" (samples_of (fun x -> 1. +. (0.01 *. x *. x)) xs) in
  check_shape "quadratic"
    { E.const = 0.; terms = [ { coeff = 1.; factors = [ ("n", term 2.) ] } ] }
    r

let test_recover_nlogn () =
  let f x = 2. +. (0.1 *. x *. Float.log x /. Float.log 2.) in
  let r = S.single ~param:"n" (samples_of f xs) in
  check_shape "n log n"
    { E.const = 0.;
      terms = [ { coeff = 1.; factors = [ ("n", term ~logexp:1 1.) ] } ] }
    r

let test_recover_sqrt () =
  let r = S.single ~param:"p" (samples_of (fun x -> 1. +. (3. *. sqrt x)) xs) in
  check_shape "sqrt"
    { E.const = 0.; terms = [ { coeff = 1.; factors = [ ("p", term 0.5) ] } ] }
    r

let test_recover_constant () =
  let r = S.single ~param:"p" (samples_of (fun _ -> 7.25) xs) in
  Alcotest.(check bool) "constant model" true (E.is_constant r.model);
  check_close "constant value" 7.25 r.model.E.const

let test_two_term_recovery () =
  (* f = 1 + 2 sqrt(x) + 0.001 x^2: needs n = 2 terms. *)
  let f x = 1. +. (2. *. sqrt x) +. (0.001 *. x *. x) in
  let r = S.single ~param:"p" (samples_of f xs) in
  let expected =
    {
      E.const = 0.;
      terms =
        [
          { E.coeff = 1.; factors = [ ("p", term 0.5) ] };
          { E.coeff = 1.; factors = [ ("p", term 2.) ] };
        ];
    }
  in
  check_shape "two terms" expected r

let test_constraint_excludes_param () =
  let constraints = { S.allowed = Some []; multiplicative = None } in
  let r =
    S.single ~constraints ~param:"p"
      (samples_of (fun x -> 5. +. (0.5 *. x)) xs)
  in
  Alcotest.(check bool) "forced constant" true (E.is_constant r.model)

let test_extended_config_recovers_inverse () =
  (* Strong-scaling shape: c + c/x needs the negative exponents. *)
  let f x = 0.5 +. (100. /. x) in
  let r =
    S.single ~config:S.extended_config ~param:"p" (samples_of f xs)
  in
  check_shape "1/p"
    { E.const = 0.; terms = [ { coeff = 1.; factors = [ ("p", term (-1.)) ] } ] }
    r

let test_default_config_cannot_decrease () =
  (* Without negative exponents the best the default menu can do for a
     decreasing function is... not a decreasing power. *)
  let f x = 0.5 +. (100. /. x) in
  let r = S.single ~param:"p" (samples_of f xs) in
  Alcotest.(check bool) "no negative exponent available" true
    (List.for_all
       (fun (t : E.compound_term) ->
         List.for_all (fun (_, st) -> st.E.expo >= 0.) t.E.factors)
       r.S.model.E.terms)

let test_min_improvement_guards_noise () =
  (* Noisy constant data: pure best-fit occasionally models the noise;
     with the acceptance margin the constant model survives. *)
  let rng = Random.State.make [| 11 |] in
  let noisy_constant =
    List.map (fun x -> (x, 5. +. (0.4 *. (Random.State.float rng 2. -. 1.)))) xs
  in
  let guarded =
    S.single ~config:{ S.default_config with min_improvement = 0.5 }
      ~param:"p" noisy_constant
  in
  Alcotest.(check bool) "guarded fit is constant" true
    (E.is_constant guarded.S.model);
  (* A real dependency still clears a reasonable margin. *)
  let real = samples_of (fun x -> 1. +. (2. *. x)) xs in
  let r =
    S.single ~config:{ S.default_config with min_improvement = 0.5 }
      ~param:"p" real
  in
  Alcotest.(check bool) "real dependency still found" false
    (E.is_constant r.S.model)

(* -- multi-parameter recovery ---------------------------------------------- *)

let grid f =
  List.concat_map
    (fun p ->
      List.map
        (fun n -> ([ ("p", p); ("n", n) ], [ f p n ]))
        [ 10.; 20.; 30.; 40.; 50. ])
    xs

let test_recover_multiplicative () =
  let f p n = 2. +. (1e-4 *. p *. n *. n) in
  let data = D.of_rows [ "p"; "n" ] (grid f) in
  let r = S.multi data in
  let expected =
    {
      E.const = 0.;
      terms = [ { E.coeff = 1.; factors = [ ("p", term 1.); ("n", term 2.) ] } ];
    }
  in
  check_shape "p * n^2" expected r

let test_recover_additive () =
  let f p n = 1. +. (0.3 *. p) +. (0.002 *. n *. n) in
  let data = D.of_rows [ "p"; "n" ] (grid f) in
  let r = S.multi data in
  let expected =
    {
      E.const = 0.;
      terms =
        [
          { E.coeff = 1.; factors = [ ("p", term 1.) ] };
          { E.coeff = 1.; factors = [ ("n", term 2.) ] };
        ];
    }
  in
  check_shape "p + n^2" expected r

let test_multi_constraint_no_interaction () =
  (* True function is multiplicative, but the constraints forbid the
     product term: the additive approximation must be chosen instead. *)
  let f p n = 2. +. (1e-4 *. p *. n *. n) in
  let data = D.of_rows [ "p"; "n" ] (grid f) in
  let constraints =
    { S.allowed = None; multiplicative = Some (fun _ _ -> false) }
  in
  let r = S.multi ~constraints data in
  Alcotest.(check bool)
    "no interaction term" false
    (E.has_interaction r.model "p" "n")

let test_multi_constraint_allowed_param () =
  let f p _n = 2. +. (0.3 *. p) in
  let data = D.of_rows [ "p"; "n" ] (grid f) in
  let constraints = { S.allowed = Some [ "p" ]; multiplicative = None } in
  let r = S.multi ~constraints data in
  Alcotest.(check (list string)) "only p used" [ "p" ] (E.parameters r.model)

(* -- dataset utilities ------------------------------------------------------ *)

let test_cov () =
  let p = { D.coords = [ ("x", 1.) ]; reps = [ 10.; 10.; 10. ] } in
  check_close "zero cov" 0. (D.cov p);
  let q = { D.coords = [ ("x", 1.) ]; reps = [ 9.; 10.; 11. ] } in
  Alcotest.(check bool) "nonzero cov" true (D.cov q > 0.05 && D.cov q < 0.15)

let test_slice () =
  let data =
    D.of_rows [ "p"; "n" ]
      [ ([ ("p", 1.); ("n", 10.) ], [ 1. ]);
        ([ ("p", 1.); ("n", 20.) ], [ 2. ]);
        ([ ("p", 2.); ("n", 10.) ], [ 3. ]) ]
  in
  let s = D.slice data ~fixed:[ ("p", 1.) ] in
  Alcotest.(check int) "sliced points" 2 (List.length s.D.points);
  Alcotest.(check (list string)) "remaining params" [ "n" ] s.D.params

let test_smape_identical () =
  check_close "zero smape" 0. (D.smape [ (1., 1.); (5., 5.) ])

(* -- property tests ---------------------------------------------------------- *)

let prop_regression_exact =
  QCheck.Test.make ~count:100 ~name:"OLS is exact on noise-free lines"
    QCheck.(pair (float_bound_exclusive 10.) (float_bound_exclusive 10.))
    (fun (a, b) ->
      let design =
        Array.of_list (List.map (fun x -> [| 1.; x |]) [ 1.; 2.; 4.; 9. ])
      in
      let y = Array.map (fun r -> a +. (b *. r.(1))) design in
      match Model.Linalg.least_squares design y with
      | Some c -> Float.abs (c.(0) -. a) < 1e-6 && Float.abs (c.(1) -. b) < 1e-6
      | None -> false)

let prop_eval_monotone_terms =
  QCheck.Test.make ~count:100
    ~name:"PMNF terms with positive exponents are monotone on x >= 2"
    QCheck.(pair (int_range 0 17) (int_range 0 2))
    (fun (ei, j) ->
      let e = List.nth S.default_config.S.exponents ei in
      let t = { E.expo = e; logexp = j } in
      QCheck.assume (e > 0. || j > 0);
      E.eval_simple t 8. <= E.eval_simple t 16.)

let prop_smape_bounded =
  QCheck.Test.make ~count:100 ~name:"SMAPE is within [0, 200]"
    QCheck.(small_list (pair (float_bound_exclusive 100.) (float_bound_exclusive 100.)))
    (fun pairs ->
      let s = D.smape pairs in
      s >= 0. && s <= 200.)

(* -- robust statistics and fitting ----------------------------------------- *)

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_median_mad () =
  check_close "odd median" 3. (Model.Stats.median [ 5.; 1.; 3. ]);
  check_close "even median" 2.5 (Model.Stats.median [ 4.; 1.; 2.; 3. ]);
  check_close "mad of 1..5" 1. (Model.Stats.mad [ 1.; 2.; 3.; 4.; 5. ]);
  (* The median resists a wild outlier that would drag the mean. *)
  check_close "median resists outlier" 3.
    (Model.Stats.median [ 1.; 2.; 3.; 4.; 1e9 ]);
  Alcotest.(check bool) "empty median is nan" true
    (Float.is_nan (Model.Stats.median []));
  Alcotest.(check bool) "empty mad is nan" true
    (Float.is_nan (Model.Stats.mad []))

let test_mad_filter_rejects_outlier () =
  let kept = Model.Stats.mad_filter [ 10.; 10.1; 9.9; 10.05; 9.95; 500. ] in
  Alcotest.(check int) "outlier dropped" 5 (List.length kept);
  Alcotest.(check bool) "survivors near the median" true
    (List.for_all (fun x -> x < 11.) kept)

let test_mad_filter_keeps_clean () =
  let clean = [ 10.; 10.1; 9.9; 10.05; 9.95 ] in
  Alcotest.(check int) "clean reps untouched"
    (List.length clean)
    (List.length (Model.Stats.mad_filter clean))

let test_mad_filter_zero_mad () =
  (* Identical reps with one corruption: the MAD is zero, so only
     exact-median values survive. *)
  Alcotest.(check (list (float 0.))) "only the median value survives"
    [ 2.; 2.; 2.; 2. ]
    (Model.Stats.mad_filter [ 2.; 2.; 2.; 2.; 77. ])

let test_mad_filter_degenerate () =
  Alcotest.(check (list (float 0.))) "empty passes through" []
    (Model.Stats.mad_filter []);
  Alcotest.(check (list (float 0.))) "singleton passes through" [ 5. ]
    (Model.Stats.mad_filter [ 5. ])

let test_multi_empty_dataset () =
  try
    ignore (S.multi (D.of_rows [ "p" ] []));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S names the cause" msg)
      true
      (string_contains msg "empty dataset")

let test_multi_robust_rejects_corruption () =
  (* Clean linear growth, with every point's last repetition corrupted
     by a 50x broken-timer outlier: the robust fit must reject exactly
     those reps and still recover the linear term, where the classic
     mean-based fit is dragged off the true shape. *)
  let f x = 5. +. (0.5 *. x) in
  let rows =
    List.map
      (fun x ->
        ([ ("p", x) ], [ f x; f x *. 1.01; f x *. 0.99; f x *. 50. ]))
      xs
  in
  let data = D.of_rows [ "p" ] rows in
  let r, rejected = S.multi_robust data in
  Alcotest.(check int) "one rejection per point" (List.length xs) rejected;
  check_shape "linear recovered despite corruption"
    { E.const = 0.; terms = [ { coeff = 1.; factors = [ ("p", term 1.) ] } ] }
    r

let test_multi_robust_clean_matches_multi () =
  let f p n = 2. +. (1e-4 *. p *. n *. n) in
  let data = D.of_rows [ "p"; "n" ] (grid f) in
  let robust, rejected = S.multi_robust data in
  Alcotest.(check int) "nothing rejected on clean data" 0 rejected;
  Alcotest.(check bool) "same shape as the classic fit" true
    (E.same_shape (S.multi data).S.model robust.S.model)

let tests =
  [
    Alcotest.test_case "solve 2x2 exactly" `Quick test_solve_exact;
    Alcotest.test_case "reject singular system" `Quick test_solve_singular;
    Alcotest.test_case "least squares on a line" `Quick test_least_squares_line;
    Alcotest.test_case "recover c + c*p" `Quick test_recover_linear;
    Alcotest.test_case "recover c + c*n^2" `Quick test_recover_quadratic;
    Alcotest.test_case "recover c + c*n*log n" `Quick test_recover_nlogn;
    Alcotest.test_case "recover c + c*sqrt p" `Quick test_recover_sqrt;
    Alcotest.test_case "recover constant" `Quick test_recover_constant;
    Alcotest.test_case "recover two-term PMNF" `Quick test_two_term_recovery;
    Alcotest.test_case "constraint forces constant" `Quick
      test_constraint_excludes_param;
    Alcotest.test_case "extended config recovers 1/p" `Quick
      test_extended_config_recovers_inverse;
    Alcotest.test_case "default config has no negative exponents" `Quick
      test_default_config_cannot_decrease;
    Alcotest.test_case "min_improvement guards noisy constants" `Quick
      test_min_improvement_guards_noise;
    Alcotest.test_case "recover multiplicative p*n^2" `Quick
      test_recover_multiplicative;
    Alcotest.test_case "recover additive p + n^2" `Quick test_recover_additive;
    Alcotest.test_case "constraint forbids interaction" `Quick
      test_multi_constraint_no_interaction;
    Alcotest.test_case "constraint restricts parameters" `Quick
      test_multi_constraint_allowed_param;
    Alcotest.test_case "coefficient of variation" `Quick test_cov;
    Alcotest.test_case "dataset slicing" `Quick test_slice;
    Alcotest.test_case "SMAPE of identical series" `Quick test_smape_identical;
    Alcotest.test_case "median and MAD" `Quick test_median_mad;
    Alcotest.test_case "MAD filter rejects an outlier" `Quick
      test_mad_filter_rejects_outlier;
    Alcotest.test_case "MAD filter keeps clean reps" `Quick
      test_mad_filter_keeps_clean;
    Alcotest.test_case "MAD filter with zero MAD" `Quick
      test_mad_filter_zero_mad;
    Alcotest.test_case "MAD filter degenerate inputs" `Quick
      test_mad_filter_degenerate;
    Alcotest.test_case "multi rejects an empty dataset" `Quick
      test_multi_empty_dataset;
    Alcotest.test_case "robust fit rejects corrupted reps" `Quick
      test_multi_robust_rejects_corruption;
    Alcotest.test_case "robust fit matches classic on clean data" `Quick
      test_multi_robust_clean_matches_multi;
    QCheck_alcotest.to_alcotest prop_regression_exact;
    QCheck_alcotest.to_alcotest prop_eval_monotone_terms;
    QCheck_alcotest.to_alcotest prop_smape_bounded;
  ]
