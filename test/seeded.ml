(** Deterministic QCheck-to-Alcotest adapter.

    Every randomized suite goes through this wrapper: the PRNG state comes
    from {!Fuzz.Seed} (fixed default 42, [FUZZ_SEED] overrides), so test
    runs are reproducible by default, and a failing property prints the
    seed to replay with. *)

let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Fuzz.Seed.state ()) test
  in
  let run' () =
    try run ()
    with e ->
      Printf.eprintf "\nrandomized test failed under %s=%d (set %s to replay)\n%!"
        Fuzz.Seed.env_var (Fuzz.Seed.get ()) Fuzz.Seed.env_var;
      raise e
  in
  (name, speed, run')
