(** Tests of campaign sharding: the deterministic coordinate partition,
    in-process shard/merge bit-identity (with and without injected
    kills), merge dedup/refusal rules, and the shard.* observability
    vocabulary staying in sync with the docs. *)

module Exp = Measure.Experiment
module Spec = Measure.Spec
module Instr = Measure.Instrument
module Fault = Measure.Fault
module Camp = Measure.Campaign
module Shard = Measure.Shard
module Machine = Mpi_sim.Machine

let machine = Machine.skylake_cluster

let tiny_app =
  let kernel name ~tiny calls per_call deps =
    Spec.kernel ~kind:Spec.Compute ~tiny
      ~calls:(fun _ -> calls)
      ~base_time:(fun ps _ -> calls *. per_call *. Spec.param ps "n")
      ~truth_deps:deps name
  in
  {
    Spec.aname = "tiny";
    kernels = [ kernel "hot" ~tiny:false 10. 1e-4 [ "n" ] ];
    model_params = [ "n" ];
  }

let design =
  { Exp.grid = [ ("n", [ 2.; 4.; 8. ]); ("p", [ 2.; 4. ]) ];
    reps = 3; mode = Instr.Full; sigma = 0.01; seed = 7 }

let plan =
  { Fault.none with
    Fault.fp_seed = 5; fp_crash = 0.2; fp_hang = 0.15; fp_persistent = 0.;
    fp_transient_attempts = 2 }

let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 }
let header = Camp.header_line ~app_name:tiny_app.Spec.aname ~plan ~retry design

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let with_temp_base f =
  let base = Filename.temp_file "shard" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (base :: List.init 8 (Shard.journal_path ~journal:base)))
    (fun () -> f base)

(* -- spec parsing ------------------------------------------------------------- *)

let test_spec_roundtrip () =
  List.iter
    (fun (k, m) ->
      let t = { Shard.sh_index = k; sh_count = m } in
      match Shard.of_spec (Shard.spec_of t) with
      | Ok t' -> Alcotest.(check bool) "spec roundtrip" true (t = t')
      | Error e -> Alcotest.fail e)
    [ (0, 1); (0, 3); (2, 3); (7, 8) ]

let test_spec_rejects_garbage () =
  List.iter
    (fun bad ->
      match Shard.of_spec bad with
      | Ok _ -> Alcotest.fail ("shard spec accepted: " ^ bad)
      | Error e ->
        Alcotest.(check bool) "error names the spec" true (contains e bad))
    [ ""; "3"; "1/"; "/3"; "3/3"; "4/3"; "-1/3"; "0/0"; "a/b"; "1/3/5" ]

(* -- partition ---------------------------------------------------------------- *)

let test_partition_exact () =
  (* Every coordinate lands in exactly one shard, shard subsets preserve
     design order, and their concatenation re-sorted is the design. *)
  let coords = Camp.coordinates design in
  List.iter
    (fun shards ->
      let subsets =
        List.init shards (fun k ->
            Shard.coordinates { Shard.sh_index = k; sh_count = shards } design)
      in
      Alcotest.(check int)
        (Printf.sprintf "%d shards partition the design" shards)
        (List.length coords)
        (List.length (List.concat subsets));
      Alcotest.(check bool) "no coordinate in two shards" true
        (List.sort compare (List.concat subsets) = List.sort compare coords);
      List.iter
        (fun sub ->
          let positions =
            List.map
              (fun c ->
                let rec idx i = function
                  | [] -> Alcotest.fail "coordinate outside the design"
                  | c' :: _ when compare c c' = 0 -> i
                  | _ :: rest -> idx (i + 1) rest
                in
                idx 0 coords)
              sub
          in
          Alcotest.(check bool) "shard subset keeps design order" true
            (List.sort compare positions = positions))
        subsets)
    [ 1; 2; 3; 5 ]

let test_assign_axis_order_independent () =
  List.iter
    (fun (params, rep) ->
      Alcotest.(check int) "axis order does not move the coordinate"
        (Shard.assign ~shards:4 ~params ~rep)
        (Shard.assign ~shards:4 ~params:(List.rev params) ~rep))
    (Camp.coordinates design)

(* -- shard/merge bit-identity ------------------------------------------------- *)

let run_shard ?limit ~resume base k shards =
  let t = { Shard.sh_index = k; sh_count = shards } in
  Camp.run_journaled ~plan ~retry
    ~keep:(fun params rep -> Shard.owns t ~params ~rep)
    ?limit ~journal:(Shard.journal_path ~journal:base k) ~resume tiny_app
    machine design

let tear_trailing_line path =
  let content = read_file path in
  let body = String.sub content 0 (String.length content - 1) in
  let last_nl = String.rindex body '\n' in
  let len = String.length body - last_nl - 1 in
  let oc = open_out_bin path in
  output_string oc (String.sub content 0 (last_nl + 1 + max 1 (len / 2)));
  close_out oc

let merge ?metrics ?events base shards =
  Shard.merge_journals ?metrics ?events ~mode:design.Exp.mode
    ~expected_header:header ~design
    (List.init shards (Shard.journal_path ~journal:base))

let test_shard_merge_identity () =
  let serial = Camp.run ~plan ~retry tiny_app machine design in
  with_temp_base @@ fun base ->
  let shards = 3 in
  for k = 0 to shards - 1 do
    ignore (run_shard ~resume:false base k shards)
  done;
  match merge base shards with
  | Error e -> Alcotest.fail e
  | Ok mg ->
    Alcotest.(check int) "three journals merged" 3 mg.Shard.mg_journals;
    Alcotest.(check int) "no duplicates" 0 mg.Shard.mg_duplicates;
    Alcotest.(check int) "no torn lines" 0 mg.Shard.mg_torn;
    Alcotest.(check int) "nothing missing" 0 (List.length mg.Shard.mg_missing);
    Alcotest.(check bool) "merged records bit-identical to serial" true
      (compare mg.Shard.mg_records serial.Camp.cp_records = 0);
    (* The merged journal is byte-identical to a single-process one. *)
    Shard.write_journal ~header ~records:mg.Shard.mg_records base;
    let expected =
      String.concat ""
        (List.map
           (fun l -> l ^ "\n")
           (header :: List.map Camp.record_to_line serial.Camp.cp_records))
    in
    Alcotest.(check bool) "merged journal bytes identical" true
      (String.equal (read_file base) expected)

let test_shard_merge_identity_with_kill () =
  let serial = Camp.run ~plan ~retry tiny_app machine design in
  with_temp_base @@ fun base ->
  let shards = 3 in
  for k = 0 to shards - 1 do
    if k = 1 then begin
      (* Kill shard 1 after two coordinates, torn mid-write, then
         restart it with resume — the coordinator's recovery path. *)
      ignore (run_shard ~limit:2 ~resume:false base k shards);
      tear_trailing_line (Shard.journal_path ~journal:base k);
      ignore (run_shard ~resume:true base k shards)
    end
    else ignore (run_shard ~resume:false base k shards)
  done;
  match merge base shards with
  | Error e -> Alcotest.fail e
  | Ok mg ->
    Alcotest.(check bool) "killed+resumed merge bit-identical to serial" true
      (compare mg.Shard.mg_records serial.Camp.cp_records = 0)

let test_merge_counters_and_events_replay () =
  let base_metrics = Obs_metrics.create () in
  let base_events = Obs_events.create ~ts:false () in
  let serial =
    Camp.run ~metrics:base_metrics ~events:base_events ~plan ~retry tiny_app
      machine design
  in
  ignore serial;
  with_temp_base @@ fun base ->
  let shards = 2 in
  for k = 0 to shards - 1 do
    ignore (run_shard ~resume:false base k shards)
  done;
  let metrics = Obs_metrics.create () in
  let events = Obs_events.create ~ts:false () in
  match merge ~metrics ~events base shards with
  | Error e -> Alcotest.fail e
  | Ok _ ->
    let snap = Obs_metrics.snapshot metrics in
    let base_snap = Obs_metrics.snapshot base_metrics in
    let value s n = Option.value ~default:0 (Obs_metrics.find_counter s n) in
    List.iter
      (fun (name, _) ->
        Alcotest.(check int) ("replayed counter " ^ name)
          (value base_snap name) (value snap name))
      Camp.counters;
    Alcotest.(check int) "shard.merged counts the journals" shards
      (value snap "shard.merged");
    let base_lines = Obs_events.lines base_events in
    let lines = Obs_events.lines events in
    Alcotest.(check int) "one extra shard.merge event"
      (List.length base_lines + 1)
      (List.length lines);
    List.iteri
      (fun i l ->
        Alcotest.(check string)
          (Printf.sprintf "replayed event %d byte-identical" i)
          l
          (List.nth lines i))
      base_lines;
    Alcotest.(check bool) "trailing event is shard.merge" true
      (contains (List.nth lines (List.length base_lines)) "shard.merge")

(* -- merge refusal and dedup rules -------------------------------------------- *)

let test_merge_rejects_mismatched_header () =
  with_temp_base @@ fun base ->
  ignore (run_shard ~resume:false base 0 2);
  ignore (run_shard ~resume:false base 1 2);
  let other =
    Camp.header_line ~app_name:tiny_app.Spec.aname ~plan ~retry
      { design with Exp.seed = design.Exp.seed + 1 }
  in
  match
    Shard.merge_journals ~mode:design.Exp.mode ~expected_header:other ~design
      (List.init 2 (Shard.journal_path ~journal:base))
  with
  | Ok _ -> Alcotest.fail "mismatched shard journal accepted"
  | Error e ->
    Alcotest.(check bool) "one-line refusal" false (contains e "\n")

let test_merge_rejects_alien_coordinates () =
  with_temp_base @@ fun base ->
  ignore (run_shard ~resume:false base 0 1);
  let narrow = { design with Exp.reps = 1 } in
  match
    Shard.merge_journals ~mode:design.Exp.mode
      ~expected_header:header (* journal header matches... *)
      ~design:narrow (* ...but the merge design no longer covers it *)
      [ Shard.journal_path ~journal:base 0 ]
  with
  | Ok _ -> Alcotest.fail "records outside the design accepted"
  | Error e ->
    Alcotest.(check bool) "refusal names the alien coordinates" true
      (contains e "outside the campaign design")

let test_merge_dedup_first_completed_wins () =
  with_temp_base @@ fun base ->
  (* Two overlapping journals: the whole campaign twice.  Every
     coordinate is a duplicate; the retry lottery is deterministic so
     both copies are identical and the merge keeps one of each. *)
  ignore (run_shard ~resume:false base 0 1);
  let p1 = Shard.journal_path ~journal:base 0 in
  let p2 = Shard.journal_path ~journal:base 1 in
  let oc = open_out_bin p2 in
  output_string oc (read_file p1);
  close_out oc;
  match
    Shard.merge_journals ~mode:design.Exp.mode ~expected_header:header ~design
      [ p1; p2 ]
  with
  | Error e -> Alcotest.fail e
  | Ok mg ->
    let n = List.length (Camp.coordinates design) in
    Alcotest.(check int) "every coordinate deduplicated" n
      mg.Shard.mg_duplicates;
    Alcotest.(check int) "one record per coordinate" n
      (List.length mg.Shard.mg_records)

let test_merge_completed_supersedes_abandoned () =
  with_temp_base @@ fun base ->
  ignore (run_shard ~resume:false base 0 1);
  let p1 = Shard.journal_path ~journal:base 0 in
  let records, _ =
    match Camp.load_journal ~mode:design.Exp.mode ~expected_header:header p1 with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  let first = List.hd records in
  let abandoned = { first with Camp.rc_outcome = Camp.Abandoned "crash" } in
  (* Journal A holds the abandonment, journal B the completion — in
     either order the completed record must win. *)
  let p2 = Shard.journal_path ~journal:base 1 in
  List.iter
    (fun order ->
      Shard.write_journal ~header ~records:[ List.nth order 0 ] p1;
      Shard.write_journal ~header ~records:[ List.nth order 1 ] p2;
      match
        Shard.merge_journals ~mode:design.Exp.mode ~expected_header:header
          ~design [ p1; p2 ]
      with
      | Error e -> Alcotest.fail e
      | Ok mg ->
        Alcotest.(check int) "duplicate counted" 1 mg.Shard.mg_duplicates;
        (match mg.Shard.mg_records with
        | [ r ] ->
          Alcotest.(check bool) "completed record survives" true
            (match r.Camp.rc_outcome with
            | Camp.Completed _ -> true
            | Camp.Abandoned _ -> false)
        | rs ->
          Alcotest.fail
            (Printf.sprintf "expected 1 merged record, got %d"
               (List.length rs))))
    [ [ abandoned; first ]; [ first; abandoned ] ]

let test_merge_tolerates_torn_journal () =
  with_temp_base @@ fun base ->
  ignore (run_shard ~resume:false base 0 2);
  ignore (run_shard ~resume:false base 1 2);
  tear_trailing_line (Shard.journal_path ~journal:base 1);
  match merge base 2 with
  | Error e -> Alcotest.fail e
  | Ok mg ->
    Alcotest.(check int) "torn line counted" 1 mg.Shard.mg_torn;
    Alcotest.(check int) "torn coordinate missing" 1
      (List.length mg.Shard.mg_missing);
    Alcotest.(check int) "everything else merged"
      (List.length (Camp.coordinates design) - 1)
      (List.length mg.Shard.mg_records)

(* -- documentation drift ------------------------------------------------------ *)

let doc_lists what vocabulary () =
  let path =
    List.find Sys.file_exists
      [ "../doc/OBSERVABILITY.md"; "doc/OBSERVABILITY.md" ]
  in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "doc/OBSERVABILITY.md lists %s %s with its meaning"
           what name)
        true (contains doc row))
    vocabulary

let tests =
  [
    Alcotest.test_case "shard spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "shard spec rejects garbage" `Quick
      test_spec_rejects_garbage;
    Alcotest.test_case "shards partition the design exactly" `Quick
      test_partition_exact;
    Alcotest.test_case "assignment ignores grid axis order" `Quick
      test_assign_axis_order_independent;
    Alcotest.test_case "shard/merge is bit-identical to serial" `Quick
      test_shard_merge_identity;
    Alcotest.test_case "kill+resume shard merge is bit-identical" `Quick
      test_shard_merge_identity_with_kill;
    Alcotest.test_case "merge replays counters and events" `Quick
      test_merge_counters_and_events_replay;
    Alcotest.test_case "merge rejects a mismatched header" `Quick
      test_merge_rejects_mismatched_header;
    Alcotest.test_case "merge rejects alien coordinates" `Quick
      test_merge_rejects_alien_coordinates;
    Alcotest.test_case "merge dedups restart overlaps" `Quick
      test_merge_dedup_first_completed_wins;
    Alcotest.test_case "completed supersedes abandoned in the merge" `Quick
      test_merge_completed_supersedes_abandoned;
    Alcotest.test_case "merge tolerates a torn shard journal" `Quick
      test_merge_tolerates_torn_journal;
    Alcotest.test_case "shard counter table in sync with doc" `Quick
      (doc_lists "counter" Shard.counters);
    Alcotest.test_case "shard event table in sync with doc" `Quick
      (doc_lists "event" Shard.event_names);
  ]
