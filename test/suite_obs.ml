(** Tests of the observability layer: the metrics registry, the trace
    sink and its Chrome export, the pipeline self-profile, and a CLI-shaped
    smoke test that pushes every bundled target through [Pipeline.analyze]
    and the [stats] export path. *)

module M = Obs_metrics
module T = Obs_trace

(* -- metrics registry ---------------------------------------------------- *)

let test_counters () =
  let reg = M.create () in
  let c = M.counter reg "a.b" in
  M.incr c;
  M.incr c;
  M.add c 40;
  Alcotest.(check int) "counter value" 42 (M.counter_value c);
  Alcotest.(check bool) "interned" true (M.counter reg "a.b" == c);
  let s = M.snapshot reg in
  Alcotest.(check (option int)) "snapshot" (Some 42) (M.find_counter s "a.b");
  Alcotest.(check (option int)) "missing" None (M.find_counter s "nope")

let test_gauges () =
  let reg = M.create () in
  let g = M.gauge reg "g" in
  let s0 = M.snapshot reg in
  Alcotest.(check (option (float 0.))) "unwritten gauge absent" None
    (M.find_gauge s0 "g");
  M.set_gauge g 1.5;
  M.add_gauge g 0.5;
  M.max_gauge g 1.0;
  let s = M.snapshot reg in
  Alcotest.(check (option (float 1e-9))) "set/add/max" (Some 2.0)
    (M.find_gauge s "g")

let test_histogram () =
  let reg = M.create () in
  let h = M.histogram reg ~bounds:[| 1.; 10. |] "h" in
  List.iter (M.observe h) [ 0.5; 5.; 50. ];
  let s = M.snapshot reg in
  match List.assoc_opt "h" s.M.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
    Alcotest.(check (list (pair (float 0.) int)))
      "buckets"
      [ (1., 1); (10., 1) ]
      hs.M.hs_buckets;
    Alcotest.(check int) "overflow" 1 hs.M.hs_overflow;
    Alcotest.(check int) "count" 3 hs.M.hs_count;
    Alcotest.(check (float 1e-9)) "sum" 55.5 hs.M.hs_sum;
    Alcotest.(check (float 1e-9)) "min" 0.5 hs.M.hs_min;
    Alcotest.(check (float 1e-9)) "max" 50. hs.M.hs_max

let test_prefix () =
  let reg = M.create () in
  M.incr (M.counter reg "interp.instr.alu");
  M.add (M.counter reg "interp.instr.mem") 3;
  M.incr (M.counter reg "other");
  let s = M.snapshot reg in
  Alcotest.(check (list (pair string int)))
    "prefix stripped"
    [ ("alu", 1); ("mem", 3) ]
    (M.counters_with_prefix s "interp.instr.")

(* -- trace sink ---------------------------------------------------------- *)

let test_disabled_sink () =
  let sink = T.disabled in
  Alcotest.(check bool) "not enabled" false (T.enabled sink);
  T.span_begin sink "x";
  T.instant sink "y";
  T.span_end sink "x";
  Alcotest.(check int) "no events" 0 (List.length (T.events sink));
  Alcotest.(check int) "with_span passes through" 7
    (T.with_span sink "s" (fun () -> 7))

let test_spans_balanced () =
  let sink = T.create () in
  T.span_begin sink "outer";
  T.instant sink "tick";
  T.span_begin sink "inner";
  T.span_end sink "inner";
  T.span_end sink "outer";
  let evs = T.events sink in
  Alcotest.(check int) "five events" 5 (List.length evs);
  Alcotest.(check bool) "balanced" true (T.balanced evs);
  let totals = T.span_totals sink in
  Alcotest.(check int) "two span names" 2 (List.length totals)

let test_with_span_on_exception () =
  let sink = T.create () in
  (try T.with_span sink "risky" (fun () -> failwith "boom") with _ -> ());
  Alcotest.(check bool) "still balanced" true (T.balanced (T.events sink))

let test_event_cap_stays_balanced () =
  let sink = T.create ~max_events:3 () in
  T.span_begin sink "a";
  T.span_begin sink "b";
  T.span_begin sink "c";
  (* cap reached: this Begin is dropped, so its End must be too *)
  T.span_begin sink "d";
  T.span_end sink "d";
  T.span_end sink "c";
  T.span_end sink "b";
  T.span_end sink "a";
  let evs = T.events sink in
  Alcotest.(check bool) "balanced after cap" true (T.balanced evs);
  Alcotest.(check bool) "dropped counted" true (T.dropped_events sink > 0)

(* Minimal well-formedness recogniser shared with suite_export's idea:
   balanced nesting outside strings. *)
let json_well_formed s =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_chrome_export () =
  let sink = T.create () in
  T.with_span sink ~cat:"pipeline" "phase" (fun () ->
      T.instant sink ~args:[ ("n", T.Int 3); ("who", T.String "x\"y") ] "mark");
  let s = T.to_chrome_string sink in
  Alcotest.(check bool) "well formed" true (json_well_formed s);
  Alcotest.(check bool) "traceEvents array" true (contains s "\"traceEvents\": [");
  Alcotest.(check bool) "has B" true (contains s "\"ph\": \"B\"");
  Alcotest.(check bool) "has E" true (contains s "\"ph\": \"E\"");
  Alcotest.(check bool) "has instant" true (contains s "\"ph\": \"i\"");
  Alcotest.(check bool) "instant has scope" true (contains s "\"s\": \"t\"");
  Alcotest.(check bool) "escaped arg" true (contains s "x\\\"y")

let test_write_file () =
  let sink = T.create () in
  T.with_span sink "p" (fun () -> ());
  let path = Filename.temp_file "perf_taint_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.write_file sink path;
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Alcotest.(check bool) "file well formed" true (json_well_formed s);
      Alcotest.(check bool) "file has traceEvents" true
        (contains s "traceEvents"))

(* -- pipeline self-profile over every bundled target --------------------- *)

(* The same target table the CLI exposes; a broken bundled app can no
   longer slip through the tests. *)
let bundled_targets () =
  let w = Mpi_sim.Runtime.default_world in
  [
    ("lulesh", Apps.Lulesh.program, Apps.Lulesh.taint_args, Apps.Lulesh.taint_world);
    ("milc", Apps.Milc.program, Apps.Milc.taint_args, Apps.Milc.taint_world);
    ("minicg", Apps.Minicg.program, Apps.Minicg.taint_args, Apps.Minicg.taint_world);
    ("iterate", Apps.Didactic.iterate_example, [ Ir.Types.VInt 10; VInt 2 ], w);
    ("foo", Apps.Didactic.foo_example, [ Ir.Types.VInt 3; VInt 1; VInt 0 ], w);
    ("matrix", Apps.Didactic.matrix_init, [ Ir.Types.VInt 6; VInt 8 ], w);
    ("select", Apps.Didactic.algorithm_selection, [ Ir.Types.VInt 2 ], w);
  ]

let test_bundled_smoke () =
  List.iter
    (fun (name, program, args, world) ->
      let metrics = M.create () in
      let trace = T.create () in
      let a = Perf_taint.Pipeline.analyze ~metrics ~trace ~world program ~args in
      Alcotest.(check bool) (name ^ " executed instructions") true (a.steps > 0);
      (* Phase gauges present and non-negative, in pipeline order. *)
      let phases = Perf_taint.Pipeline.phases a in
      Alcotest.(check (list string))
        (name ^ " phases")
        [ "static"; "taint_run"; "post"; "total" ]
        (List.map fst phases);
      List.iter
        (fun (p, s) ->
          Alcotest.(check bool) (name ^ " phase " ^ p ^ " >= 0") true (s >= 0.))
        phases;
      (* Instruction classes were counted and agree with the step total. *)
      let classes = M.counters_with_prefix a.snapshot "interp.instr." in
      let by_class = List.fold_left (fun acc (_, v) -> acc + v) 0 classes in
      Alcotest.(check int) (name ^ " classes sum to steps") a.steps by_class;
      (* Label-table statistics are coherent. *)
      let ls = Taint.Label.table_stats a.labels in
      Alcotest.(check bool)
        (name ^ " dedup <= unions")
        true
        (ls.Taint.Label.dedup_hits <= ls.Taint.Label.unions);
      Alcotest.(check int)
        (name ^ " labels agree")
        (Taint.Label.label_count a.labels)
        ls.Taint.Label.labels;
      (* The recorded trace is loadable: balanced spans, pipeline phases
         present. *)
      let evs = T.events trace in
      Alcotest.(check bool) (name ^ " trace balanced") true (T.balanced evs);
      let chrome = T.to_chrome_string trace in
      Alcotest.(check bool)
        (name ^ " chrome json well formed")
        true (json_well_formed chrome);
      Alcotest.(check bool)
        (name ^ " has taint_run span")
        true
        (contains chrome "pipeline.taint_run"))
    (bundled_targets ())

let test_stats_json_path () =
  List.iter
    (fun (name, program, args, world) ->
      let metrics = M.create () in
      let a = Perf_taint.Pipeline.analyze ~metrics ~world program ~args in
      let s = Perf_taint.Export.to_string (Perf_taint.Export.stats_json a) in
      Alcotest.(check bool) (name ^ " stats well formed") true
        (json_well_formed s);
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (name ^ " stats has " ^ key)
            true
            (contains s ("\"" ^ key ^ "\"")))
        [ "phases"; "static"; "taint_run"; "post"; "instructions";
          "label_table"; "unions"; "dedup_hits"; "metrics" ])
    (bundled_targets ())

(* Without a registry the pipeline still reports phases and label stats,
   but skips per-instruction accounting — the disabled interpreter path. *)
let test_analyze_without_registry () =
  let a =
    Perf_taint.Pipeline.analyze Apps.Didactic.iterate_example
      ~args:[ Ir.Types.VInt 10; VInt 2 ]
  in
  Alcotest.(check bool) "phases recorded" true
    (List.length (Perf_taint.Pipeline.phases a) = 4);
  Alcotest.(check (option int)) "no instruction classes" None
    (M.find_counter a.snapshot "interp.instr.alu");
  Alcotest.(check bool) "label stats recorded" true
    (M.find_counter a.snapshot "taint.unions" <> None)

(* -- search + simulator accounting --------------------------------------- *)

let test_search_accounting () =
  let reg = M.create () in
  let config = { Model.Search.default_config with metrics = Some reg } in
  let samples =
    List.map (fun x -> (x, 2. +. (0.5 *. x))) [ 2.; 4.; 8.; 16.; 32. ]
  in
  let _ = Model.Search.single ~config ~param:"p" samples in
  let s = M.snapshot reg in
  let get name = Option.value ~default:0 (M.find_counter s name) in
  Alcotest.(check bool) "single-term candidates" true
    (get "search.candidates.single_term" > 0);
  Alcotest.(check bool) "two-term candidates" true
    (get "search.candidates.two_term" > 0);
  Alcotest.(check bool) "evaluated >= generated" true
    (get "search.evaluated"
    >= get "search.candidates.single_term" + get "search.candidates.two_term")

let test_simulator_accounting () =
  let reg = M.create () in
  let design =
    {
      Measure.Experiment.grid = [ ("p", [ 8.; 16. ]); ("size", [ 10. ]) ];
      reps = 3;
      mode = Measure.Instrument.Full;
      sigma = 0.02;
      seed = 1;
    }
  in
  let runs =
    Measure.Experiment.run_design ~metrics:reg Apps.Lulesh_spec.app
      Mpi_sim.Machine.skylake_cluster design
  in
  let s = M.snapshot reg in
  Alcotest.(check (option int)) "runs counted" (Some (List.length runs))
    (M.find_counter s "sim.runs");
  Alcotest.(check (option int)) "one campaign" (Some 1)
    (M.find_counter s "sim.campaigns");
  (match M.find_gauge s "sim.core_hours" with
  | None -> Alcotest.fail "core-hours gauge missing"
  | Some ch ->
    Alcotest.(check (float 1e-9)) "core-hours matches bookkeeping"
      (Measure.Experiment.core_hours runs)
      ch);
  match List.assoc_opt "sim.run_wall_s" s.M.histograms with
  | None -> Alcotest.fail "wall-time histogram missing"
  | Some hs -> Alcotest.(check int) "histogram count" (List.length runs) hs.M.hs_count

let tests =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "gauges" `Quick test_gauges;
    Alcotest.test_case "histograms" `Quick test_histogram;
    Alcotest.test_case "counter prefix listing" `Quick test_prefix;
    Alcotest.test_case "disabled sink is inert" `Quick test_disabled_sink;
    Alcotest.test_case "span nesting balanced" `Quick test_spans_balanced;
    Alcotest.test_case "with_span survives exceptions" `Quick
      test_with_span_on_exception;
    Alcotest.test_case "event cap keeps pairs matched" `Quick
      test_event_cap_stays_balanced;
    Alcotest.test_case "chrome trace export" `Quick test_chrome_export;
    Alcotest.test_case "trace file dump" `Quick test_write_file;
    Alcotest.test_case "bundled targets smoke (analyze + trace)" `Quick
      test_bundled_smoke;
    Alcotest.test_case "bundled targets stats json" `Quick test_stats_json_path;
    Alcotest.test_case "analyze without a registry" `Quick
      test_analyze_without_registry;
    Alcotest.test_case "search candidate accounting" `Quick
      test_search_accounting;
    Alcotest.test_case "simulator campaign accounting" `Quick
      test_simulator_accounting;
  ]
