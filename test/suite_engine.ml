(** Tests of the policy-parameterized execution engine: control-taint
    corner cases through the Taint policy ("$never" joins, nested
    branches sharing an immediate postdominator), Taint/Plain agreement
    with control-flow taint disabled, Coverage hit counts, the step
    budget under Plain, and the counter-name table in
    [doc/OBSERVABILITY.md] staying in sync with
    {!Interp.Engine.instr_counters}. *)

open Ir.Types
module B = Ir.Builder
module M = Interp.Machine
module P = Interp.Plain
module C = Interp.Coverage
module CP = Interp.Coverage_policy
module Obs = Interp.Observations
module O = Fuzz.Oracle

let prog funcs entry = { pname = "t"; funcs; entry }
let names m l = Taint.Label.names (M.label_table m) l

(* A branch whose arms both return: no block postdominates it, so the
   control scope is the function-scoped "$never" join and every return
   under it carries the condition's taint. *)
let never_fn =
  B.define "f" ~params:[ "c" ] (fun b ->
      let c = B.prim b "taint:c" [ Reg "c" ] in
      let cond = B.gt b c (Int 0) in
      B.terminate b (Branch (cond, "yes", "no"));
      B.start_block b "yes";
      B.ret b (Int 1);
      B.start_block b "no";
      B.ret b (Int 2))

let test_never_join () =
  let m = M.create (prog [ never_fn ] "f") in
  let _, l = M.run m [ VInt 5 ] in
  Alcotest.(check (list string))
    "constant return under a $never scope carries the condition taint"
    [ "c" ] (names m l)

(* Control taint is function-scoped: a caller that invokes [f] above and
   then writes a constant must produce a clean value — the callee's
   never-popped scope dies with its frame. *)
let test_never_join_is_function_scoped () =
  let main =
    B.define "main" ~params:[ "c" ] (fun b ->
        B.call_unit b "f" [ Reg "c" ];
        B.set b "after" (Int 7);
        B.ret b (Reg "after"))
  in
  let m = M.create (prog [ main; never_fn ] "main") in
  let v, l = M.run m [ VInt 5 ] in
  Alcotest.(check bool) "caller result value" true (v = VInt 7);
  Alcotest.(check (list string))
    "callee's $never scope does not leak into the caller" [] (names m l)

(* Two nested tainted branches whose arms meet at the same block:
   entry -(a>0)-> {mid, join}, mid -(b>0)-> {left, join}, left -> join.
   "join" is the immediate postdominator of both branch blocks, so a
   store inside [left] runs under both scopes and a write after [join]
   is clean again. *)
let shared_join ~store =
  B.define "f" ~params:[ "a"; "b" ] (fun b ->
      let a = B.prim b "taint:a" [ Reg "a" ] in
      let bb = B.prim b "taint:b" [ Reg "b" ] in
      let arr = B.alloc b (Int 1) in
      let ca = B.gt b a (Int 0) in
      B.terminate b (Branch (ca, "mid", "join"));
      B.start_block b "mid";
      let cb = B.gt b bb (Int 0) in
      B.terminate b (Branch (cb, "left", "join"));
      B.start_block b "left";
      if store then B.store b arr (Int 0) (Int 1);
      B.terminate b (Jump "join");
      B.start_block b "join";
      B.set b "after" (Int 3);
      if store then B.ret b (B.load b arr (Int 0)) else B.ret b (Reg "after"))

let test_nested_shared_ipostdom_union () =
  let m = M.create (prog [ shared_join ~store:true ] "f") in
  let v, l = M.run m [ VInt 1; VInt 1 ] in
  Alcotest.(check bool) "stored value read back" true (v = VInt 1);
  Alcotest.(check (list string))
    "store under both nested scopes carries both labels" [ "a"; "b" ]
    (List.sort compare (names m l))

let test_nested_shared_ipostdom_pops_both () =
  let m = M.create (prog [ shared_join ~store:false ] "f") in
  let v, l = M.run m [ VInt 1; VInt 1 ] in
  Alcotest.(check bool) "post-join value" true (v = VInt 3);
  Alcotest.(check (list string))
    "both scopes popped at the shared join; post-join write is clean" []
    (names m l)

(* -- control_flow_taint = false: Taint and Plain agree ---------------------- *)

let loop_fn =
  B.define "f" ~params:[ "n" ] (fun b ->
      let n = B.prim b "taint:n" [ Reg "n" ] in
      B.set b "acc" (Int 0);
      B.for_ b "i" ~from:(Int 0) ~below:n (fun i ->
          B.set b "acc" (B.add b (Reg "acc") i);
          B.work b (Int 1));
      B.ret b (Reg "acc"))

let no_cf = { M.default_config with control_flow_taint = false }

let test_cf_off_matches_plain () =
  let p = prog [ loop_fn ] "f" in
  let m = M.create ~config:no_cf p in
  let mv, ml = M.run m [ VInt 6 ] in
  let pm = P.create ~config:no_cf p in
  let pv, pl = P.run pm [ VInt 6 ] in
  Alcotest.(check bool) "same result value" true (mv = pv);
  Alcotest.(check bool) "plain label is empty" true (Taint.Label.is_empty pl);
  Alcotest.(check (list string))
    "without control taint the data-flow-only result is clean" []
    (names m ml);
  Alcotest.(check int) "same step count" (M.steps_executed m)
    (P.steps_executed pm);
  let iters o = List.map (fun lo -> lo.Obs.lo_iters) (Obs.loop_list o) in
  Alcotest.(check (list int))
    "same loop dynamics"
    (iters (M.observations m))
    (iters (P.observations pm))

let test_cf_off_oracle_passes () =
  List.iter
    (fun f ->
      match O.check (O.taint_vs_plain_with { O.interp_config with
                                             control_flow_taint = false })
              (prog [ f ] "f")
      with
      | O.Pass -> ()
      | O.Fail msg -> Alcotest.failf "taint-vs-plain divergence: %s" msg)
    [ loop_fn; never_fn; shared_join ~store:true ]

(* -- Coverage policy --------------------------------------------------------- *)

let test_coverage_counts () =
  let m = C.create (prog [ loop_fn ] "f") in
  ignore (C.run m [ VInt 3 ]);
  let st = C.policy_state m in
  let lo =
    match Obs.loop_list (C.observations m) with
    | [ lo ] -> lo
    | other -> Alcotest.failf "expected one loop, got %d" (List.length other)
  in
  Alcotest.(check int) "loop dynamics: 3 iterations, 1 entry" 4
    (lo.Obs.lo_iters + lo.Obs.lo_entries);
  Alcotest.(check int) "header hits = iterations + entries" 4
    (CP.hits_of st ~func:"f" ~block:lo.Obs.lo_header);
  (* The header is not the function entry, so every arrival traverses an
     intra-function edge: edges into the header sum to its hit count. *)
  let into_header =
    List.fold_left
      (fun acc ((_, _, dst), n) ->
        if String.equal dst lo.Obs.lo_header then acc + n else acc)
      0 (CP.edge_hits st)
  in
  Alcotest.(check int) "edge hits into the header sum to its arrivals" 4
    into_header;
  Alcotest.(check bool) "several blocks covered" true
    (CP.blocks_covered st >= 3);
  Alcotest.(check int) "unexecuted block has zero hits" 0
    (CP.hits_of st ~func:"f" ~block:"no-such-block")

(* -- the step budget through a non-default policy ---------------------------- *)

let test_plain_budget () =
  let pm =
    P.create ~config:{ M.default_config with max_steps = 10 }
      (prog [ loop_fn ] "f")
  in
  try
    ignore (P.run pm [ VInt 1000 ]);
    Alcotest.fail "expected Budget_exceeded"
  with M.Budget_exceeded n ->
    Alcotest.(check int) "budget honoured exactly" 10 n

(* -- writing a new policy ----------------------------------------------------
   The worked example of doc/IR.md, compiled verbatim: a store-counting
   analysis is one small POLICY module plus the functor. *)

module Store_count = struct
  let name = "store-count"
  let tracks_labels = true (* [on_store] must fire *)
  let observes_blocks = false

  type state = { labels : Taint.Label.table; mutable stores : int }
  type label = unit
  type fstate = unit

  let create ~control_flow_taint:_ ~hint:_ =
    { labels = Taint.Label.create (); stores = 0 }

  let table s = s.labels
  let frame_state _ = ()
  let clean = ()
  let is_clean _ = true
  let read_reg () _ = ()
  let write_reg _ () _ () = ()
  let bind_param () _ () = ()
  let frame_slots _ _ = ()
  let read_slot () _ = ()
  let write_slot _ () _ () = ()
  let bind_slot () _ () = ()
  let join2 _ () () = ()
  let on_alloc _ ~alloc:_ ~size:_ () = ()
  let on_load _ ~alloc:_ ~offset:_ ~base:_ ~index:_ = ()

  let on_store s () ~alloc:_ ~offset:_ ~base:_ ~index:_ ~data:_ =
    s.stores <- s.stores + 1

  let source _ ~param:_ vl = vl
  let export _ () = Taint.Label.empty
  let import _ _ = ()
  let export_args _ args = List.map (fun (v, ()) -> (v, Taint.Label.empty)) args
  let branch_dep _ () () = ()
  let return_label _ () () = ()
  let wants_scope _ () = false
  let scope_push _ () ~join:_ () = ()
  let block_enter _ () ~func:_ ~block:_ ~prev:_ = ()
end

module Stores = Interp.Engine.Make (Store_count)

let test_custom_policy () =
  let store_loop =
    B.define "f" ~params:[ "n" ] (fun b ->
        let arr = B.alloc b (Reg "n") in
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun i ->
            B.store b arr i i);
        B.ret_unit b)
  in
  let m = Stores.create (prog [ store_loop ] "f") in
  ignore (Stores.run m [ VInt 5 ]);
  Alcotest.(check int) "five stores counted" 5
    (Stores.policy_state m).Store_count.stores

(* -- documentation drift ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* [Interp.Engine.instr_counters] is the single definition of the
   per-instruction counter names; the counter table in
   doc/OBSERVABILITY.md must list every row verbatim. *)
let test_counter_doc_in_sync () =
  (* cwd is _build/default/test under `dune runtest` (the dep in
     test/dune makes the copy) but the project root under `dune exec`. *)
  let path =
    List.find Sys.file_exists
      [ "../doc/OBSERVABILITY.md"; "doc/OBSERVABILITY.md" ]
  in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "doc/OBSERVABILITY.md lists %s with its meaning" name)
        true (contains doc row))
    Interp.Engine.instr_counters

let tests =
  [
    Alcotest.test_case "$never join taints constant returns" `Quick
      test_never_join;
    Alcotest.test_case "$never scope is function-scoped" `Quick
      test_never_join_is_function_scoped;
    Alcotest.test_case "nested branches sharing ipostdom union" `Quick
      test_nested_shared_ipostdom_union;
    Alcotest.test_case "shared ipostdom pops both scopes" `Quick
      test_nested_shared_ipostdom_pops_both;
    Alcotest.test_case "control_flow_taint=false matches Plain" `Quick
      test_cf_off_matches_plain;
    Alcotest.test_case "taint-vs-plain oracle with cf taint off" `Quick
      test_cf_off_oracle_passes;
    Alcotest.test_case "coverage block/edge counts" `Quick
      test_coverage_counts;
    Alcotest.test_case "Plain honours the step budget" `Quick
      test_plain_budget;
    Alcotest.test_case "a custom policy via Engine.Make" `Quick
      test_custom_policy;
    Alcotest.test_case "instr counter table in sync with doc" `Quick
      test_counter_doc_in_sync;
  ]
