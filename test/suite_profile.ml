(** Tests of the observability additions: the deterministic sampling
    profiler (bit-identical folded output across runs and merge
    chunkings, associative merging), histogram quantiles, the structured
    event log (byte-identity across runs and pools, kill/resume
    ordering), the bench baseline gate, and doc drift for every
    documented vocabulary. *)

module Prof = Obs_profile
module M = Obs_metrics
module E = Obs_events
module Exp = Measure.Experiment
module Spec = Measure.Spec
module Instr = Measure.Instrument
module Camp = Measure.Campaign
module BR = Measure.Bench_report
module J = Measure.Jsonio

(* -- shared fixtures -------------------------------------------------------- *)

let machine = Mpi_sim.Machine.skylake_cluster

let tiny_app =
  let kernel name ~tiny calls per_call deps =
    Spec.kernel ~kind:Spec.Compute ~tiny
      ~calls:(fun _ -> calls)
      ~base_time:(fun ps _ -> calls *. per_call *. Spec.param ps "n")
      ~truth_deps:deps name
  in
  {
    Spec.aname = "tiny";
    kernels = [ kernel "hot" ~tiny:false 10. 1e-4 [ "n" ] ];
    model_params = [ "n" ];
  }

let design =
  { Exp.grid = [ ("n", [ 2.; 4.; 8. ]); ("p", [ 2.; 4. ]) ];
    reps = 3; mode = Instr.Full; sigma = 0.01; seed = 7 }

(* The didactic programs double as profiling workloads: small enough to
   run in microseconds, large enough to take samples at interval 10. *)
let tasks =
  [
    (Apps.Didactic.iterate_example, [ Ir.Types.VInt 10; VInt 2 ]);
    (Apps.Didactic.foo_example, [ Ir.Types.VInt 3; VInt 1; VInt 0 ]);
    (Apps.Didactic.matrix_init, [ Ir.Types.VInt 5; VInt 7 ]);
    (Apps.Didactic.iterate_example, [ Ir.Types.VInt 7; VInt 3 ]);
  ]

let profile_tasks ~interval ts =
  let prof = Prof.create ~interval () in
  List.iter
    (fun (program, args) ->
      ignore (Perf_taint.Pipeline.analyze ~profile:prof program ~args))
    ts;
  prof

(* -- profiler determinism --------------------------------------------------- *)

let test_profile_deterministic () =
  let folded () = Prof.to_folded (profile_tasks ~interval:10 tasks) in
  let a = folded () and b = folded () in
  Alcotest.(check bool) "folded output is non-trivial" true
    (String.length a > 0);
  Alcotest.(check string) "two identical runs, identical folded stacks" a b;
  let snap = Prof.snapshot (profile_tasks ~interval:10 tasks) in
  Alcotest.(check bool) "samples were taken" true (snap.Prof.ps_samples > 0);
  Alcotest.(check bool) "per-function rows exist" true
    (snap.Prof.ps_funcs <> []);
  Alcotest.(check string) "snapshot export agrees with direct export" a
    (Prof.folded_of_snapshot snap)

(* Parallel sections give every task a private profiler and fold them
   back in task order.  How the folds are grouped into waves must not
   matter: merging task profiles one at a time (the --jobs 1 analog)
   and merging them wave by wave (any chunk size) must produce the same
   profile — this is what makes --jobs N bit-identical. *)
let test_profile_merge_matches_serial () =
  let per_task () =
    List.map (fun t -> profile_tasks ~interval:10 [ t ]) tasks
  in
  let serial =
    let base = Prof.create ~interval:10 () in
    List.iter (fun p -> Prof.merge ~into:base p) (per_task ());
    Prof.to_folded base
  in
  let chunked size =
    let rec chunks = function
      | [] -> []
      | ts ->
        let rec take n = function
          | t :: rest when n > 0 ->
            let hd, tl = take (n - 1) rest in
            (t :: hd, tl)
          | rest -> ([], rest)
        in
        let hd, tl = take size ts in
        hd :: chunks tl
    in
    let base = Prof.create ~interval:10 () in
    List.iter
      (fun chunk ->
        let wave = Prof.create ~interval:10 () in
        List.iter (fun p -> Prof.merge ~into:wave p) chunk;
        Prof.merge ~into:base wave)
      (chunks (per_task ()));
    Prof.to_folded base
  in
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "wave size %d reproduces the serial merge" size)
        serial (chunked size))
    [ 1; 2; 7 ]

(* Synthetic profiles driven directly through enter/tick/leave: merging
   must be associative so wave-structured pools can fold in any
   grouping without changing the result. *)
let synthetic i =
  let p = Prof.create ~interval:5 () in
  Prof.enter p "main";
  for _ = 1 to 5 * (i + 1) do Prof.tick p done;
  Prof.enter p (Printf.sprintf "task%d" (i mod 2));
  for _ = 1 to 10 * i do Prof.tick p done;
  Prof.leave p;
  Prof.leave p;
  p

let test_profile_merge_associative () =
  let left =
    let ab = synthetic 1 in
    Prof.merge ~into:ab (synthetic 2);
    Prof.merge ~into:ab (synthetic 3);
    ab
  in
  let right =
    let bc = synthetic 2 in
    Prof.merge ~into:bc (synthetic 3);
    let a = synthetic 1 in
    Prof.merge ~into:a bc;
    a
  in
  Alcotest.(check bool) "synthetic profiles saw samples" true
    (Prof.samples left > 0);
  Alcotest.(check string) "merge is associative" (Prof.to_folded left)
    (Prof.to_folded right)

let test_profile_invalid_args () =
  (try
     ignore (Prof.create ~interval:0 ());
     Alcotest.fail "interval 0 accepted"
   with Invalid_argument _ -> ());
  let a = Prof.create ~interval:10 () in
  let b = Prof.create ~interval:20 () in
  try
    Prof.merge ~into:a b;
    Alcotest.fail "interval mismatch accepted"
  with Invalid_argument _ -> ()

(* -- histogram quantiles ---------------------------------------------------- *)

let test_quantile_edges () =
  let reg = M.create () in
  let h = M.histogram reg ~bounds:[| 1.; 2.; 4.; 8. |] "q.test" in
  let empty = M.histogram reg ~bounds:[| 1.; 2. |] "q.empty" in
  ignore empty;
  List.iter (M.observe h) [ 0.5; 1.5; 3.; 5.; 9. ];
  let snap = M.snapshot reg in
  let hs = List.assoc "q.test" snap.M.histograms in
  let es = List.assoc "q.empty" snap.M.histograms in
  Alcotest.(check bool) "empty histogram quantile is nan" true
    (Float.is_nan (M.quantile es 0.5));
  Alcotest.(check (float 1e-9)) "q<=0 is the minimum" hs.M.hs_min
    (M.quantile hs (-0.5));
  Alcotest.(check (float 1e-9)) "q>=1 is the maximum" hs.M.hs_max
    (M.quantile hs 1.5);
  let p50 = M.quantile hs 0.50 in
  let p95 = M.quantile hs 0.95 in
  let p99 = M.quantile hs 0.99 in
  Alcotest.(check bool) "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  List.iter
    (fun q ->
      let v = M.quantile hs q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f clamped to [min,max]" q)
        true
        (v >= hs.M.hs_min && v <= hs.M.hs_max))
    [ 0.01; 0.25; 0.5; 0.75; 0.95; 0.99 ]

(* -- structured event log --------------------------------------------------- *)

let event_lines f =
  let sink = E.create ~ts:false () in
  f sink;
  E.lines sink

(* Drop the parallel-only wave events and the sequence numbers they
   consume: what remains must match the serial stream line for line. *)
let is_wave line =
  let needle = "\"event\": \"campaign.wave\"" in
  let nh = String.length line and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub line i nn = needle || at (i + 1)) in
  at 0

let strip_seq line =
  match String.index_opt line ',' with
  | Some i -> String.sub line i (String.length line - i)
  | None -> line

let test_campaign_events_deterministic () =
  let serial () =
    event_lines (fun events ->
        ignore (Camp.run ~events tiny_app machine design))
  in
  let a = serial () and b = serial () in
  Alcotest.(check bool) "campaign emits events" true (a <> []);
  Alcotest.(check (list string)) "two serial runs, identical streams" a b;
  let pooled =
    Par.Pool.with_pool ~jobs:3 (fun pool ->
        event_lines (fun events ->
            ignore (Camp.run ~pool ~events tiny_app machine design)))
  in
  let content lines =
    List.filter_map
      (fun l -> if is_wave l then None else Some (strip_seq l))
      lines
  in
  Alcotest.(check bool) "pool emits wave events" true
    (List.exists is_wave pooled);
  Alcotest.(check (list string))
    "pooled stream is the serial stream plus wave events" (content a)
    (content pooled)

let with_temp_journal f =
  let path = Filename.temp_file "profile_events" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let has_event name lines =
  let needle = Printf.sprintf "\"event\": \"%s\"" name in
  List.exists
    (fun l ->
      let nh = String.length l and nn = String.length needle in
      let rec at i =
        i + nn <= nh && (String.sub l i nn = needle || at (i + 1))
      in
      at 0)
    lines

let test_events_kill_resume () =
  with_temp_journal @@ fun journal ->
  let first =
    event_lines (fun events ->
        let r =
          Camp.run_journaled ~events ~limit:3 ~journal ~resume:false tiny_app
            machine design
        in
        Alcotest.(check bool) "limit interrupts the campaign" true
          r.Camp.cp_interrupted)
  in
  Alcotest.(check bool) "interrupted run recorded coordinates" true
    (has_event "campaign.record" first);
  Alcotest.(check bool) "each flushed record is checkpointed" true
    (has_event "campaign.checkpoint" first);
  Alcotest.(check bool) "no resume events on a fresh journal" false
    (has_event "campaign.resume" first);
  let resumed =
    event_lines (fun events ->
        let r =
          Camp.run_journaled ~events ~journal ~resume:true tiny_app machine
            design
        in
        Alcotest.(check int) "resume restores the finished coordinates" 3
          r.Camp.cp_resumed;
        Alcotest.(check int) "resumed campaign completes the design"
          (List.length (Camp.coordinates design))
          (List.length r.Camp.cp_runs))
  in
  Alcotest.(check bool) "resumed run announces restored coordinates" true
    (has_event "campaign.resume" resumed)

let test_search_events_pool_identical () =
  let runs = Exp.run_design tiny_app machine design in
  let data = Exp.total_dataset runs ~params:[ "n" ] in
  let search ?pool () =
    event_lines (fun events ->
        ignore
          (Model.Search.multi_robust
             ~config:{ Model.Search.default_config with events; pool }
             data))
  in
  let serial = search () in
  Alcotest.(check bool) "search emits a selection event" true
    (has_event "search.selected" serial);
  Par.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list string))
        "search events identical with a pool" serial (search ~pool ()))

let test_fuzz_events_pool_identical () =
  let fuzz ?pool () =
    event_lines (fun events ->
        ignore (Fuzz.Driver.run_campaign ?pool ~events ~seed:3 ~budget:10 ()))
  in
  let serial = fuzz () in
  Alcotest.(check bool) "fuzz emits oracle events" true
    (has_event "fuzz.oracle" serial);
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list string)) "fuzz events identical with a pool" serial
        (fuzz ~pool ()))

(* -- bench baseline gate ---------------------------------------------------- *)

let test_compare_values_tolerance () =
  let expected =
    J.Obj [ ("experiment", J.Str "x"); ("v", J.Float 100.); ("k", J.Int 3) ]
  in
  let within =
    J.Obj [ ("experiment", J.Str "x"); ("v", J.Float 104.); ("k", J.Int 3) ]
  in
  Alcotest.(check int) "4% drift passes a 5% tolerance" 0
    (List.length
       (BR.compare_values ~tolerance:0.05 ~expected ~actual:within));
  let beyond =
    J.Obj [ ("experiment", J.Str "x"); ("v", J.Float 110.); ("k", J.Int 3) ]
  in
  (match BR.compare_values ~tolerance:0.05 ~expected ~actual:beyond with
  | [ mm ] -> Alcotest.(check string) "the drifted key is named" "v" mm.BR.mm_path
  | mms ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one mismatch, got %d"
         (List.length mms)));
  let missing = J.Obj [ ("experiment", J.Str "x"); ("v", J.Float 100.) ] in
  match BR.compare_values ~tolerance:0.05 ~expected ~actual:missing with
  | [ mm ] ->
    Alcotest.(check string) "missing key is a mismatch" "k" mm.BR.mm_path;
    Alcotest.(check string) "missing key marked" "<missing>" mm.BR.mm_actual
  | mms ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one mismatch, got %d"
         (List.length mms))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let test_check_baseline_perturbation () =
  let baseline = Filename.temp_file "baseline" ".json" in
  let actual = Filename.temp_file "actual" ".json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ baseline; actual ])
    (fun () ->
      write_file baseline "{\"experiment\": \"t\", \"v\": 100.0, \"n\": 3}";
      write_file actual "{\"experiment\": \"t\", \"v\": 103.0, \"n\": 3}";
      (match BR.check_baseline ~baseline ~actual () with
      | Ok ck ->
        Alcotest.(check bool) "within-tolerance actual passes" true
          (BR.passed [ ck ])
      | Error e -> Alcotest.fail e);
      write_file actual "{\"experiment\": \"t\", \"v\": 120.0, \"n\": 3}";
      (match BR.check_baseline ~baseline ~actual () with
      | Ok ck ->
        Alcotest.(check bool) "perturbed actual fails" false (BR.passed [ ck ])
      | Error e -> Alcotest.fail e);
      match
        BR.check_baseline ~baseline ~actual:(actual ^ ".does-not-exist") ()
      with
      | Ok ck ->
        Alcotest.(check bool) "missing actual is a failing check, not an error"
          false
          (BR.passed [ ck ])
      | Error e -> Alcotest.fail e)

(* -- doc drift -------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* Each documented vocabulary has a single definition in code; the
   matching table in doc/OBSERVABILITY.md must list every row verbatim. *)
let doc_lists what vocabulary () =
  (* cwd is _build/default/test under `dune runtest` (the dep in
     test/dune makes the copy) but the project root under `dune exec`. *)
  let path =
    List.find Sys.file_exists
      [ "../doc/OBSERVABILITY.md"; "doc/OBSERVABILITY.md" ]
  in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "doc/OBSERVABILITY.md lists %s %s with its meaning"
           what name)
        true (contains doc row))
    vocabulary

let tests =
  [
    Alcotest.test_case "profiler output is deterministic" `Quick
      test_profile_deterministic;
    Alcotest.test_case "chunked merge reproduces the serial profile" `Quick
      test_profile_merge_matches_serial;
    Alcotest.test_case "profile merge is associative" `Quick
      test_profile_merge_associative;
    Alcotest.test_case "profiler rejects invalid intervals" `Quick
      test_profile_invalid_args;
    Alcotest.test_case "histogram quantile edge cases" `Quick
      test_quantile_edges;
    Alcotest.test_case "campaign event stream is deterministic" `Quick
      test_campaign_events_deterministic;
    Alcotest.test_case "events across kill and resume" `Quick
      test_events_kill_resume;
    Alcotest.test_case "search events identical with a pool" `Quick
      test_search_events_pool_identical;
    Alcotest.test_case "fuzz events identical with a pool" `Quick
      test_fuzz_events_pool_identical;
    Alcotest.test_case "baseline comparison honors tolerance" `Quick
      test_compare_values_tolerance;
    Alcotest.test_case "baseline gate catches perturbations" `Quick
      test_check_baseline_perturbation;
    Alcotest.test_case "profile fields documented" `Quick
      (doc_lists "profile field" Prof.json_fields);
    Alcotest.test_case "campaign events documented" `Quick
      (doc_lists "campaign event" Camp.event_names);
    Alcotest.test_case "search events documented" `Quick
      (doc_lists "search event" Model.Search.event_names);
    Alcotest.test_case "fuzz events documented" `Quick
      (doc_lists "fuzz event" Fuzz.Driver.event_names);
  ]
