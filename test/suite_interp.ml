(** Tests of the interpreter: scalar evaluation, memory, primitives,
    events, loop/branch observation, control-taint scoping, and runtime
    error handling. *)

open Ir.Types
module B = Ir.Builder
module M = Interp.Machine
module Obs = Interp.Observations

let prog funcs entry = { pname = "t"; funcs; entry }

let run_fn ?config f args =
  let m = M.create ?config (prog [ f ] f.fname) in
  let r = M.run m args in
  (m, r)

(* -- scalar evaluation ------------------------------------------------------ *)

let test_arith () =
  let f =
    B.define "f" ~params:[ "x"; "y" ] (fun b ->
        let s = B.add b (Reg "x") (Reg "y") in
        let d = B.mul b s (Int 3) in
        let m = B.rem b d (Int 7) in
        B.ret b m)
  in
  let _, (v, _) = run_fn f [ VInt 4; VInt 5 ] in
  Alcotest.(check bool) "(4+5)*3 mod 7 = 6" true (v = VInt 6)

let test_float_arith () =
  let f =
    B.define "f" ~params:[] (fun b ->
        let x = B.fadd b (Float 1.5) (Float 2.5) in
        let y = B.fmul b x (Float 2.) in
        B.ret b y)
  in
  let _, (v, _) = run_fn f [] in
  Alcotest.(check bool) "(1.5+2.5)*2 = 8" true (v = VFloat 8.)

let test_comparisons_and_bools () =
  let f =
    B.define "f" ~params:[ "x" ] (fun b ->
        let a = B.lt b (Reg "x") (Int 10) in
        let c = B.ge b (Reg "x") (Int 0) in
        B.ret b (B.and_ b a c))
  in
  let _, (v, _) = run_fn f [ VInt 5 ] in
  Alcotest.(check bool) "0 <= 5 < 10" true (v = VBool true)

let test_min_max_unops () =
  let f =
    B.define "f" ~params:[] (fun b ->
        let a = B.imin b (Int 3) (Int 8) in
        let x = B.imax b a (Int 5) in
        let fl = B.unop b FloatOfInt x in
        let back = B.unop b IntOfFloat fl in
        B.ret b back)
  in
  let _, (v, _) = run_fn f [] in
  Alcotest.(check bool) "max(min(3,8),5) = 5" true (v = VInt 5)

let test_division_by_zero () =
  let f =
    B.define "f" ~params:[] (fun b -> B.ret b (B.div b (Int 1) (Int 0)))
  in
  (try
     ignore (run_fn f []);
     Alcotest.fail "expected runtime error"
   with M.Runtime_error _ -> ())

let test_kind_mismatch () =
  let f =
    B.define "f" ~params:[] (fun b -> B.ret b (B.add b (Int 1) (Float 2.)))
  in
  try
    ignore (run_fn f []);
    Alcotest.fail "expected runtime error"
  with M.Runtime_error _ -> ()

(* -- memory ------------------------------------------------------------------ *)

let test_array_roundtrip () =
  let f =
    B.define "f" ~params:[] (fun b ->
        let a = B.alloc b (Int 4) in
        B.store b a (Int 2) (Int 42);
        B.ret b (B.load b a (Int 2)))
  in
  let _, (v, _) = run_fn f [] in
  Alcotest.(check bool) "load returns stored value" true (v = VInt 42)

let test_out_of_bounds () =
  let f =
    B.define "f" ~params:[] (fun b ->
        let a = B.alloc b (Int 4) in
        B.ret b (B.load b a (Int 9)))
  in
  try
    ignore (run_fn f []);
    Alcotest.fail "expected out-of-bounds error"
  with M.Runtime_error _ -> ()

let test_arrays_are_zero_initialised () =
  let f =
    B.define "f" ~params:[] (fun b ->
        let a = B.alloc b (Int 3) in
        B.ret b (B.load b a (Int 1)))
  in
  let _, (v, _) = run_fn f [] in
  Alcotest.(check bool) "fresh cell is 0" true (v = VInt 0)

(* -- taint propagation -------------------------------------------------------- *)

let names m l = Taint.Label.names (M.label_table m) l

let test_dataflow_through_memory () =
  let f =
    B.define "f" ~params:[ "x" ] (fun b ->
        let x = B.prim b "taint:x" [ Reg "x" ] in
        let a = B.alloc b (Int 2) in
        B.store b a (Int 0) x;
        B.ret b (B.load b a (Int 0)))
  in
  let m, (_, l) = run_fn f [ VInt 7 ] in
  Alcotest.(check (list string)) "label flows through store/load" [ "x" ]
    (names m l)

let test_taint_array_source () =
  let f =
    B.define "f" ~params:[] (fun b ->
        let a = B.alloc b (Int 3) in
        let a = B.prim b "taint:buf" [ a ] in
        B.ret b (B.load b a (Int 1)))
  in
  let m, (_, l) = run_fn f [] in
  Alcotest.(check (list string)) "whole buffer tainted" [ "buf" ] (names m l)

let test_control_taint_scoped_to_join () =
  (* After the join of a tainted branch, writes are clean again. *)
  let f =
    B.define "f" ~params:[ "c" ] (fun b ->
        let c = B.prim b "taint:c" [ Reg "c" ] in
        let cond = B.gt b c (Int 0) in
        B.if_ b cond ~then_:(fun () -> B.set b "inside" (Int 1))
          ~else_:(fun () -> B.set b "inside" (Int 2))
          ();
        (* This write happens after the join: no control dependence. *)
        B.set b "after" (Int 3);
        B.ret b (Reg "after"))
  in
  let m, (_, l) = run_fn f [ VInt 1 ] in
  Alcotest.(check (list string)) "post-join write is clean" [] (names m l)

let test_control_taint_inside_branch () =
  let f =
    B.define "f" ~params:[ "c" ] (fun b ->
        let c = B.prim b "taint:c" [ Reg "c" ] in
        let cond = B.gt b c (Int 0) in
        B.if_ b cond ~then_:(fun () -> B.set b "v" (Int 1))
          ~else_:(fun () -> B.set b "v" (Int 2))
          ();
        B.ret b (Reg "v"))
  in
  let m, (_, l) = run_fn f [ VInt 1 ] in
  Alcotest.(check (list string)) "in-branch write is control tainted" [ "c" ]
    (names m l)

let test_return_under_tainted_loop () =
  (* The LULESH pattern: a value accumulated under a tainted loop carries
     the loop bound's label through control flow. *)
  let f =
    B.define "f" ~params:[ "n" ] (fun b ->
        let n = B.prim b "taint:n" [ Reg "n" ] in
        B.set b "acc" (Int 0);
        B.for_ b "i" ~from:(Int 0) ~below:n (fun _ ->
            B.set b "acc" (B.add b (Reg "acc") (Int 1)));
        B.ret b (Reg "acc"))
  in
  let m, (v, l) = run_fn f [ VInt 5 ] in
  Alcotest.(check bool) "acc = 5" true (v = VInt 5);
  Alcotest.(check (list string)) "acc carries n (control flow)" [ "n" ]
    (names m l)

(* -- observations --------------------------------------------------------------- *)

let test_nested_loop_iterations () =
  let f =
    B.define "f" ~params:[ "n" ] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Reg "n") (fun _ ->
            B.for_ b "j" ~from:(Int 0) ~below:(Int 4) (fun _ ->
                B.work b (Int 1)));
        B.ret_unit b)
  in
  let m, _ = run_fn f [ VInt 3 ] in
  let loops = Obs.loop_list (M.observations m) in
  let by_depth d =
    List.find (fun lo -> lo.Obs.lo_depth = d) loops
  in
  Alcotest.(check int) "outer iterations" 3 (by_depth 1).Obs.lo_iters;
  Alcotest.(check int) "outer entries" 1 (by_depth 1).Obs.lo_entries;
  Alcotest.(check int) "inner iterations total" 12 (by_depth 2).Obs.lo_iters;
  Alcotest.(check int) "inner entries" 3 (by_depth 2).Obs.lo_entries

let test_zero_iteration_loop () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.for_ b "i" ~from:(Int 0) ~below:(Int 0) (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let m, _ = run_fn f [] in
  match Obs.loop_list (M.observations m) with
  | [ lo ] ->
    Alcotest.(check int) "0 iterations" 0 lo.Obs.lo_iters;
    Alcotest.(check int) "1 entry" 1 lo.Obs.lo_entries
  | l -> Alcotest.failf "expected one loop, got %d" (List.length l)

let test_branch_observation () =
  let f =
    B.define "f" ~params:[ "x" ] (fun b ->
        let x = B.prim b "taint:x" [ Reg "x" ] in
        B.for_ b "i" ~from:(Int 0) ~below:(Int 4) (fun i ->
            let c = B.lt b i x in
            B.if_ b c ~then_:(fun () -> B.work b (Int 1)) ());
        B.ret_unit b)
  in
  let m, _ = run_fn f [ VInt 2 ] in
  let branches = Obs.branch_list (M.observations m) in
  (* Find the if-branch (its dep mentions x). *)
  let bo =
    List.find
      (fun bo -> List.mem "x" (Taint.Label.names (M.label_table m) bo.Obs.br_dep))
      branches
  in
  Alcotest.(check int) "taken twice" 2 bo.Obs.br_taken;
  Alcotest.(check int) "not taken twice" 2 bo.Obs.br_not_taken

let test_events_recorded () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.prim_unit b "mpi_barrier" [];
        B.prim_unit b "mpi_barrier" [];
        B.ret_unit b)
  in
  let m = M.create (prog [ f ] "f") in
  Mpi_sim.Runtime.install Mpi_sim.Runtime.default_world m;
  let _ = M.run m [] in
  let events = Obs.event_list (M.observations m) in
  Alcotest.(check int) "two barrier events" 2
    (List.length (List.filter (fun e -> e.Obs.ev_prim = "mpi_barrier") events))

let test_call_counts_and_work () =
  let callee =
    B.define "g" ~params:[] (fun b ->
        B.work b (Int 5);
        B.ret_unit b)
  in
  let f =
    B.define "f" ~params:[] (fun b ->
        B.repeat b (Int 3) (fun () -> B.call_unit b "g" []);
        B.ret_unit b)
  in
  let m = M.create (prog [ f; callee ] "f") in
  let _ = M.run m [] in
  let fo = Obs.func_obs (M.observations m) "g" in
  Alcotest.(check int) "g called 3 times" 3 fo.Obs.fo_calls;
  Alcotest.(check int) "g work 15" 15 fo.Obs.fo_work

let test_step_budget () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.while_ b ~cond:(fun () -> Bool true) ~body:(fun () -> B.work b (Int 1));
        B.ret_unit b)
  in
  let config = { M.default_config with max_steps = 1000 } in
  (try
     ignore (run_fn ~config f []);
     Alcotest.fail "expected budget exhaustion"
   with M.Budget_exceeded n -> Alcotest.(check int) "budget in exception" 1000 n);
  (* Budget exhaustion is not a runtime error: the two must stay distinct
     so the fuzzing oracles can tell a long run from a broken program. *)
  try
    ignore (run_fn ~config f []);
    Alcotest.fail "expected budget exhaustion"
  with
  | M.Runtime_error _ -> Alcotest.fail "Budget_exceeded leaked as Runtime_error"
  | M.Budget_exceeded _ -> ()

let test_mpi_comm_size_taint () =
  let f =
    B.define "f" ~params:[] (fun b ->
        let p = B.prim b "mpi_comm_size" [] in
        B.ret b p)
  in
  let m = M.create (prog [ f ] "f") in
  Mpi_sim.Runtime.install { Mpi_sim.Runtime.ranks = 16; rank = 0 } m;
  let v, l = M.run m [] in
  Alcotest.(check bool) "size is 16" true (v = VInt 16);
  Alcotest.(check (list string)) "implicit p label" [ "p" ]
    (Taint.Label.names (M.label_table m) l)

let test_unknown_prim () =
  let f =
    B.define "f" ~params:[] (fun b ->
        B.prim_unit b "no_such_prim" [];
        B.ret_unit b)
  in
  try
    ignore (run_fn f []);
    Alcotest.fail "expected unknown primitive error"
  with M.Runtime_error _ -> ()

let test_arity_mismatch () =
  let g = B.define "g" ~params:[ "a"; "b" ] (fun b -> B.ret b (Reg "a")) in
  let f =
    B.define "f" ~params:[] (fun b ->
        B.call_unit b "g" [ Int 1 ];
        B.ret_unit b)
  in
  try
    let m = M.create (prog [ f; g ] "f") in
    ignore (M.run m []);
    Alcotest.fail "expected arity error"
  with M.Runtime_error _ -> ()

(* -- interprocedural loop context ------------------------------------------------ *)

let test_run_named () =
  let f =
    B.define "f" ~params:[ "alpha"; "beta" ] (fun b ->
        B.ret b (B.sub b (Reg "alpha") (Reg "beta")))
  in
  let m = M.create (prog [ f ] "f") in
  let v, _ = M.run_named m [ ("beta", VInt 3); ("alpha", VInt 10) ] in
  Alcotest.(check bool) "named args bound by name" true (v = VInt 7);
  let m2 = M.create (prog [ f ] "f") in
  try
    ignore (M.run_named m2 [ ("alpha", VInt 1) ]);
    Alcotest.fail "expected missing-binding error"
  with M.Runtime_error _ -> ()

let test_enclosing_context () =
  let callee =
    B.define "g" ~params:[ "m" ] (fun b ->
        B.for_ b "j" ~from:(Int 0) ~below:(Reg "m") (fun _ -> B.work b (Int 1));
        B.ret_unit b)
  in
  let f =
    B.define "f" ~params:[ "n"; "m" ] (fun b ->
        let n = B.prim b "taint:n" [ Reg "n" ] in
        let m' = B.prim b "taint:m" [ Reg "m" ] in
        B.for_ b "i" ~from:(Int 0) ~below:n (fun _ ->
            B.call_unit b "g" [ m' ]);
        B.ret_unit b)
  in
  let m = M.create (prog [ f; callee ] "f") in
  let _ = M.run m [ VInt 2; VInt 3 ] in
  let g_loop =
    List.find (fun lo -> lo.Obs.lo_func = "g") (Obs.loop_list (M.observations m))
  in
  Alcotest.(check bool) "g's loop knows its enclosing f loop" true
    (g_loop.Obs.lo_enclosing <> []);
  Alcotest.(check int) "g's loop ran 6 times total" 6 g_loop.Obs.lo_iters

let tests =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_arith;
    Alcotest.test_case "float arithmetic" `Quick test_float_arith;
    Alcotest.test_case "comparisons and booleans" `Quick
      test_comparisons_and_bools;
    Alcotest.test_case "min/max and conversions" `Quick test_min_max_unops;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "array round trip" `Quick test_array_roundtrip;
    Alcotest.test_case "array bounds checking" `Quick test_out_of_bounds;
    Alcotest.test_case "arrays zero-initialised" `Quick
      test_arrays_are_zero_initialised;
    Alcotest.test_case "taint through memory" `Quick
      test_dataflow_through_memory;
    Alcotest.test_case "array taint source" `Quick test_taint_array_source;
    Alcotest.test_case "control taint scoped to join" `Quick
      test_control_taint_scoped_to_join;
    Alcotest.test_case "control taint inside branch" `Quick
      test_control_taint_inside_branch;
    Alcotest.test_case "accumulator under tainted loop" `Quick
      test_return_under_tainted_loop;
    Alcotest.test_case "nested loop iteration counts" `Quick
      test_nested_loop_iterations;
    Alcotest.test_case "zero-iteration loop" `Quick test_zero_iteration_loop;
    Alcotest.test_case "branch coverage observation" `Quick
      test_branch_observation;
    Alcotest.test_case "primitive events" `Quick test_events_recorded;
    Alcotest.test_case "call counts and work" `Quick test_call_counts_and_work;
    Alcotest.test_case "instruction budget" `Quick test_step_budget;
    Alcotest.test_case "mpi_comm_size taints p" `Quick test_mpi_comm_size_taint;
    Alcotest.test_case "unknown primitive" `Quick test_unknown_prim;
    Alcotest.test_case "call arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "run_named binds by name" `Quick test_run_named;
    Alcotest.test_case "interprocedural loop context" `Quick
      test_enclosing_context;
  ]
