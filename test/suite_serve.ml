(** Tests of the model-serving layer: catalog key stability, exact entry
    round-trips, LRU/disk behavior across restarts, invalidation, torn
    and corrupt index handling, the daemon's batch semantics and
    admission control, socket bind refusal, and the serve.* metrics /
    event / protocol-op vocabularies staying in sync with the docs. *)

module Cat = Serve.Catalog
module Server = Serve.Server
module Protocol = Serve.Protocol
module Exp = Measure.Experiment
module Camp = Measure.Campaign
module Fault = Measure.Fault
module Instr = Measure.Instrument

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let with_tmp_dir f =
  let dir = Filename.temp_file "suite_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let design =
  { Exp.grid = [ ("p", [ 2.; 4.; 8. ]); ("size", [ 16. ]) ];
    reps = 2; mode = Instr.Full; sigma = 0.02; seed = 42 }

let plan = Fault.none
let retry = Camp.default_retry

(* An entry with awkward floats — the round trip must be exact, so use
   values that are not short decimals. *)
let entry ?(key = "deadbeef") ?(app = "lulesh") ?(const = 0.1) () =
  {
    Cat.e_key = key;
    e_app = app;
    e_model =
      {
        Model.Expr.const;
        terms =
          [
            {
              Model.Expr.coeff = 1. /. 3.;
              factors = [ ("p", { Model.Expr.expo = 2. /. 3.; logexp = 1 }) ];
            };
          ];
      };
    e_error = 0.30000000000000004;
    e_rss = 1.2345678901234567e-07;
    e_hypotheses = 23;
    e_rejected = 1;
    e_runs = 12;
    e_core_hours = 0.2;
    e_attempts = 14;
    e_retries = 2;
    e_abandoned = 0;
    e_faults = [ ("crash", 3); ("hang", 1) ];
    e_wasted_core_hours = 0.017;
    e_backoff_core_hours = 0.05;
  }

(* -- keys --------------------------------------------------------------------- *)

let test_key_stability () =
  let k () =
    Cat.key ~app_name:"lulesh" ~program_text:"func @main() {}" ~design ~plan
      ~retry
  in
  Alcotest.(check string) "same identity, same key" (k ()) (k ());
  let base = k () in
  List.iter
    (fun (what, k') ->
      Alcotest.(check bool) (what ^ " changes the key") true (base <> k'))
    [
      ( "program text",
        Cat.key ~app_name:"lulesh" ~program_text:"func @main(n) {}" ~design
          ~plan ~retry );
      ( "noise seed",
        Cat.key ~app_name:"lulesh" ~program_text:"func @main() {}"
          ~design:{ design with Exp.seed = 43 } ~plan ~retry );
      ( "fault plan",
        Cat.key ~app_name:"lulesh" ~program_text:"func @main() {}" ~design
          ~plan:{ plan with Fault.fp_crash = 0.1 } ~retry );
      ( "retry policy",
        Cat.key ~app_name:"lulesh" ~program_text:"func @main() {}" ~design
          ~plan ~retry:{ retry with Camp.rt_max_attempts = 5 } );
    ]

(* -- entry round-trip --------------------------------------------------------- *)

let test_entry_roundtrip () =
  let e = entry () in
  let line = Cat.entry_to_line e in
  Alcotest.(check bool) "one line" false (contains line "\n");
  (match Cat.entry_of_line line with
  | Error err -> Alcotest.fail err
  | Ok e' ->
    Alcotest.(check bool) "entry round-trips bit-identically" true (e = e'));
  match Cat.entry_of_line "{\"key\":17}" with
  | Ok _ -> Alcotest.fail "truncated entry accepted"
  | Error _ -> ()

(* -- store -------------------------------------------------------------------- *)

let test_open_requires_dir () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "no-such-catalog" in
  match Cat.open_ ~dir () with
  | Ok _ -> Alcotest.fail "missing catalog directory accepted"
  | Error e ->
    Alcotest.(check bool) "error names the path" true (contains e dir)

let test_insert_find_reopen () =
  with_tmp_dir @@ fun dir ->
  let a = entry ~key:"aaaa" ~const:0.1 () in
  let b = entry ~key:"bbbb" ~app:"milc" ~const:0.2 () in
  (match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Cat.insert cat a;
    Cat.insert cat b;
    Alcotest.(check int) "two persisted" 2 (Cat.length cat);
    Alcotest.(check bool) "find a" true (Cat.find cat "aaaa" = Some a);
    Alcotest.(check bool) "mem b" true (Cat.mem cat "bbbb");
    Alcotest.(check bool) "absent key" true (Cat.find cat "cccc" = None);
    Cat.close cat);
  (* the restart path: everything decodes back from disk, bit-identical *)
  match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Alcotest.(check int) "reopen sees both" 2 (Cat.length cat);
    Alcotest.(check int) "nothing decoded yet" 0 (Cat.resident cat);
    Alcotest.(check bool) "a restored exactly" true (Cat.find cat "aaaa" = Some a);
    Alcotest.(check bool) "b restored exactly" true (Cat.find cat "bbbb" = Some b);
    Cat.close cat

let test_duplicate_key_last_write_wins () =
  with_tmp_dir @@ fun dir ->
  (match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Cat.insert cat (entry ~key:"k" ~const:1.0 ());
    Cat.insert cat (entry ~key:"k" ~const:2.0 ());
    Cat.close cat);
  match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Alcotest.(check int) "one key" 1 (Cat.length cat);
    (match Cat.find cat "k" with
    | Some e ->
      Alcotest.(check (float 0.)) "later write wins" 2.0
        e.Cat.e_model.Model.Expr.const
    | None -> Alcotest.fail "key lost");
    Cat.close cat

let test_lru_eviction () =
  with_tmp_dir @@ fun dir ->
  let metrics = Obs_metrics.create () in
  let events = Obs_events.create ~ts:false () in
  match Cat.open_ ~metrics ~events ~capacity:2 ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    List.iter
      (fun k -> Cat.insert cat (entry ~key:k ()))
      [ "k1"; "k2"; "k3" ];
    Alcotest.(check int) "LRU holds capacity" 2 (Cat.resident cat);
    Alcotest.(check int) "disk holds everything" 3 (Cat.length cat);
    (* the evicted key is still served — decoded from disk and promoted,
       pushing out the now-least-recent k2 *)
    Alcotest.(check bool) "evicted key re-decodes" true
      (Cat.find cat "k1" <> None);
    Alcotest.(check int) "LRU still bounded" 2 (Cat.resident cat);
    let snap = Obs_metrics.snapshot metrics in
    Alcotest.(check int) "evictions counted" 2
      (Option.value ~default:0 (Obs_metrics.find_counter snap "serve.evictions"));
    Alcotest.(check bool) "evict event emitted" true
      (List.exists
         (fun l -> contains l "serve.evict")
         (Obs_events.lines events));
    Cat.close cat

let test_torn_trailing_line_tolerated () =
  with_tmp_dir @@ fun dir ->
  (match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Cat.insert cat (entry ~key:"whole" ());
    Cat.close cat);
  let index = Filename.concat dir "catalog.jsonl" in
  let oc = open_out_gen [ Open_append ] 0o600 index in
  output_string oc "{\"key\":\"torn";
  close_out oc;
  match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail ("torn trailing line refused: " ^ e)
  | Ok cat ->
    Alcotest.(check int) "only the whole entry survives" 1 (Cat.length cat);
    Alcotest.(check bool) "whole entry intact" true (Cat.mem cat "whole");
    Cat.close cat

let test_corrupt_middle_line_refused () =
  with_tmp_dir @@ fun dir ->
  (match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Cat.insert cat (entry ~key:"first" ());
    Cat.insert cat (entry ~key:"second" ());
    Cat.close cat);
  let index = Filename.concat dir "catalog.jsonl" in
  let lines = String.split_on_char '\n' (read_file index) in
  let oc = open_out_bin index in
  List.iter
    (fun l ->
      if l <> "" then begin
        output_string oc (if contains l "first" then "{\"key\":" else l);
        output_char oc '\n'
      end)
    lines;
  close_out oc;
  match Cat.open_ ~dir () with
  | Ok _ -> Alcotest.fail "corrupt index accepted"
  | Error e ->
    Alcotest.(check bool) "error names the index line" true
      (contains e "catalog.jsonl:1")

let test_invalidate () =
  with_tmp_dir @@ fun dir ->
  (match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Cat.insert cat (entry ~key:"keep" ~app:"milc" ());
    Cat.insert cat (entry ~key:"drop" ());
    Cat.insert cat (entry ~key:"drop2" ());
    Alcotest.(check bool) "absent key: false" false
      (Cat.invalidate cat ~key:"ghost");
    Alcotest.(check bool) "present key removed" true
      (Cat.invalidate cat ~key:"drop");
    Alcotest.(check bool) "gone from memory and disk" false
      (Cat.mem cat "drop");
    Alcotest.(check int) "invalidate_app sweeps the rest" 1
      (Cat.invalidate_app cat ~app:"lulesh");
    Cat.close cat);
  (* the rewrite is durable: a reopen must not resurrect anything *)
  match Cat.open_ ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Alcotest.(check int) "only the survivor persists" 1 (Cat.length cat);
    Alcotest.(check bool) "survivor intact" true (Cat.mem cat "keep");
    Cat.close cat

(* -- the daemon (in-process) -------------------------------------------------- *)

(* Tiny but real fits: a 2-point grid, 2 repetitions. *)
let req ?(app = "lulesh") ?(seed = 42) ?(extra = "") op =
  Printf.sprintf
    {|{"op":"%s","app":"%s"%s,"grid":{"p":[2,4],"size":[16],"r":[8]},"reps":2,"seed":%d}|}
    op app extra seed

let with_server ?max_core_hours ?metrics f =
  with_tmp_dir @@ fun dir ->
  let metrics = match metrics with Some m -> m | None -> Obs_metrics.create () in
  match Cat.open_ ~metrics ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat ->
    Fun.protect
      ~finally:(fun () -> Cat.close cat)
      (fun () ->
        f dir (Server.create ~metrics ?max_core_hours ~catalog:cat ()))

let counter metrics name =
  Option.value ~default:0
    (Obs_metrics.find_counter (Obs_metrics.snapshot metrics) name)

let test_batch_semantics () =
  let metrics = Obs_metrics.create () in
  with_server ~metrics @@ fun _dir server ->
  (* Same key three times in one batch (one fit + predict + predict) and
     one malformed line in the middle: the fit runs once, the duplicates
     ride it as hits, the garbage gets a one-line error, and every
     response comes back in request order. *)
  let lines =
    [
      req "fit";
      req ~extra:{|,"coords":{"p":2,"size":16}|} "predict";
      "{\"op\":";
      req ~extra:{|,"coords":{"p":4,"size":16}|} "predict";
    ]
  in
  let responses, stop = Server.handle_batch server lines in
  Alcotest.(check bool) "no shutdown" false stop;
  Alcotest.(check int) "one response per request" (List.length lines)
    (List.length responses);
  (match responses with
  | [ r_fit; r_p1; r_err; r_p2 ] ->
    Alcotest.(check bool) "fit is the miss" true
      (contains r_fit {|"cached":false|});
    Alcotest.(check bool) "duplicate key rides the fit" true
      (contains r_p1 {|"cached":true|});
    Alcotest.(check bool) "malformed line is a one-line error" true
      (contains r_err {|"ok":false|} && not (contains r_err "\n"));
    Alcotest.(check bool) "second predict also a hit" true
      (contains r_p2 {|"cached":true|})
  | _ -> Alcotest.fail "wrong response arity");
  Alcotest.(check int) "one miss" 1 (counter metrics "serve.misses");
  Alcotest.(check int) "two hits" 2 (counter metrics "serve.hits");
  Alcotest.(check int) "four requests" 4 (counter metrics "serve.requests");
  (* bit-identity with the one-line-at-a-time path on a fresh catalog *)
  let serial =
    let metrics2 = Obs_metrics.create () in
    with_server ~metrics:metrics2 @@ fun _dir server2 ->
    List.map (fun l -> fst (Server.handle_line server2 l)) lines
  in
  List.iteri
    (fun i (batched, one_at_a_time) ->
      (* the only allowed difference: handling lines separately makes the
         duplicate-key fit a hit of the already-memoized entry, which is
         exactly the same bytes *)
      Alcotest.(check string)
        (Printf.sprintf "response %d identical to serial handling" i)
        one_at_a_time batched)
    (List.combine responses serial)

let test_unknown_app_and_bad_faults () =
  with_server @@ fun _dir server ->
  let r1, _ = Server.handle_line server (req ~app:"nosuchapp" "fit") in
  Alcotest.(check bool) "unknown app named" true
    (contains r1 {|"ok":false|} && contains r1 "nosuchapp");
  let r2, _ =
    Server.handle_line server (req ~extra:{|,"faults":"frob=1"|} "fit")
  in
  Alcotest.(check bool) "bad fault spec is a clean error" true
    (contains r2 {|"ok":false|});
  (* the server survives both *)
  let r3, _ = Server.handle_line server (req "fit") in
  Alcotest.(check bool) "still serving" true (contains r3 {|"ok":true|})

let test_admission_control () =
  let metrics = Obs_metrics.create () in
  with_server ~metrics @@ fun dir server ->
  ignore (Server.handle_line server (req "fit"));
  (* a budget-zero server over the same catalog: hits free, fits refused *)
  match Cat.open_ ~metrics ~dir () with
  | Error e -> Alcotest.fail e
  | Ok cat2 ->
    Fun.protect
      ~finally:(fun () -> Cat.close cat2)
      (fun () ->
        let broke =
          Server.create ~metrics ~max_core_hours:0. ~catalog:cat2 ()
        in
        let hit, _ =
          Server.handle_line broke
            (req ~extra:{|,"coords":{"p":2,"size":16}|} "predict")
        in
        Alcotest.(check bool) "hit served under a spent budget" true
          (contains hit {|"cached":true|});
        let miss, _ = Server.handle_line broke (req ~seed:99 "fit") in
        Alcotest.(check bool) "cold fit refused, budget named" true
          (contains miss {|"ok":false|}
          && contains miss "core-hour budget exhausted");
        Alcotest.(check int) "rejection counted" 1
          (counter metrics "serve.rejected");
        Alcotest.(check (float 0.)) "nothing charged" 0.
          (Server.spent_core_hours broke))

let test_stats_and_invalidate_ops () =
  with_server @@ fun _dir server ->
  ignore (Server.handle_line server (req "fit"));
  let stats, _ = Server.handle_line server {|{"op":"stats"}|} in
  List.iter
    (fun field ->
      Alcotest.(check bool) (Printf.sprintf "stats has %S" field) true
        (contains stats (Printf.sprintf "\"%s\"" field)))
    [ "requests"; "hits"; "misses"; "hit_rate"; "resident"; "persisted";
      "core_hours_spent" ];
  let inv, _ =
    Server.handle_line server {|{"op":"invalidate","app":"lulesh"}|}
  in
  Alcotest.(check bool) "invalidate reports the removal" true
    (contains inv {|"removed":1|});
  let inv2, _ =
    Server.handle_line server {|{"op":"invalidate","app":"lulesh"}|}
  in
  Alcotest.(check bool) "second invalidate removes nothing" true
    (contains inv2 {|"removed":0|});
  let bye, stop = Server.handle_line server {|{"op":"shutdown"}|} in
  Alcotest.(check bool) "shutdown acknowledged" true (contains bye {|"ok":true|});
  Alcotest.(check bool) "shutdown stops the loop" true stop

(* -- sockets ------------------------------------------------------------------ *)

let test_unix_socket_bind_rules () =
  let path = Filename.temp_file "serve_sock" ".sock" in
  Sys.remove path;
  let ep = Server.Unix_socket path in
  (match Server.bind_endpoint ep with
  | Error e -> Alcotest.fail e
  | Ok fd ->
    (* a live listener on the same path must be refused by name *)
    (match Server.bind_endpoint ep with
    | Ok fd2 ->
      Unix.close fd2;
      Alcotest.fail "double bind accepted"
    | Error e ->
      Alcotest.(check bool) "refusal names the socket path" true
        (contains e path));
    (* leave a stale socket file behind: close without unlinking *)
    Unix.close fd);
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists path);
  (match Server.bind_endpoint ep with
  | Error e -> Alcotest.fail ("stale socket not rebound: " ^ e)
  | Ok fd -> Server.close_endpoint ep fd);
  Alcotest.(check bool) "close_endpoint unlinks the path" false
    (Sys.file_exists path)

let test_connect_gives_up () =
  match
    Server.connect ~attempts:2
      (Server.Unix_socket "/tmp/serve-no-such-daemon.sock")
  with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error e -> Alcotest.(check bool) "error mentions connect" true (e <> "")

(* -- documentation drift ------------------------------------------------------ *)

let doc_lists path what vocabulary () =
  let path =
    List.find Sys.file_exists [ "../" ^ path; path ]
  in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "%s lists %s %s with its meaning" path what name)
        true (contains doc row))
    vocabulary

let tests =
  [
    Alcotest.test_case "catalog key is stable and sensitive" `Quick
      test_key_stability;
    Alcotest.test_case "entry line round-trips bit-identically" `Quick
      test_entry_roundtrip;
    Alcotest.test_case "open refuses a missing directory" `Quick
      test_open_requires_dir;
    Alcotest.test_case "insert/find survive a reopen exactly" `Quick
      test_insert_find_reopen;
    Alcotest.test_case "duplicate keys: last write wins" `Quick
      test_duplicate_key_last_write_wins;
    Alcotest.test_case "LRU evicts decoded entries, disk keeps all" `Quick
      test_lru_eviction;
    Alcotest.test_case "torn trailing index line tolerated" `Quick
      test_torn_trailing_line_tolerated;
    Alcotest.test_case "corrupt index line refused by name" `Quick
      test_corrupt_middle_line_refused;
    Alcotest.test_case "invalidate rewrites the index durably" `Quick
      test_invalidate;
    Alcotest.test_case "batch: dup keys fit once, order kept" `Quick
      test_batch_semantics;
    Alcotest.test_case "unknown app / bad faults are clean errors" `Quick
      test_unknown_app_and_bad_faults;
    Alcotest.test_case "admission control spares hits" `Quick
      test_admission_control;
    Alcotest.test_case "stats, invalidate and shutdown ops" `Quick
      test_stats_and_invalidate_ops;
    Alcotest.test_case "unix socket bind/stale/refuse rules" `Quick
      test_unix_socket_bind_rules;
    Alcotest.test_case "client connect gives up cleanly" `Quick
      test_connect_gives_up;
    Alcotest.test_case "serve counter table in sync with doc" `Quick
      (doc_lists "doc/OBSERVABILITY.md" "counter" Server.counters);
    Alcotest.test_case "serve event table in sync with doc" `Quick
      (doc_lists "doc/OBSERVABILITY.md" "event" Server.event_names);
    Alcotest.test_case "protocol op table in sync with doc" `Quick
      (doc_lists "doc/SERVE.md" "op" Protocol.ops);
  ]
