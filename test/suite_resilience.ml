(** Tests of the resilience subsystem: deterministic fault plans, the
    campaign executor (retry/backoff, bit-identity with [run_design]),
    the checkpoint journal (kill/resume), grid-gap reporting, and the
    outlier-robust model fit surviving fault-degraded datasets. *)

module Sim = Measure.Simulator
module Exp = Measure.Experiment
module Spec = Measure.Spec
module Instr = Measure.Instrument
module Fault = Measure.Fault
module Camp = Measure.Campaign
module Machine = Mpi_sim.Machine

let machine = Machine.skylake_cluster

let tiny_app =
  let kernel name ~tiny calls per_call deps =
    Spec.kernel ~kind:Spec.Compute ~tiny
      ~calls:(fun _ -> calls)
      ~base_time:(fun ps _ -> calls *. per_call *. Spec.param ps "n")
      ~truth_deps:deps name
  in
  {
    Spec.aname = "tiny";
    kernels = [ kernel "hot" ~tiny:false 10. 1e-4 [ "n" ] ];
    model_params = [ "n" ];
  }

let design =
  { Exp.grid = [ ("n", [ 2.; 4.; 8. ]); ("p", [ 2.; 4. ]) ];
    reps = 3; mode = Instr.Full; sigma = 0.01; seed = 7 }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* -- fault plans ------------------------------------------------------------- *)

let test_fault_deterministic () =
  let plan = Fault.uniform ~seed:11 0.25 in
  List.iter
    (fun (params, rep) ->
      Alcotest.(check bool) "same coordinate, same draw" true
        (Fault.at plan ~params ~rep = Fault.at plan ~params ~rep))
    (Camp.coordinates design)

let test_fault_none_never_fires () =
  List.iter
    (fun (params, rep) ->
      Alcotest.(check bool) "clean plan injects nothing" true
        (Fault.at Fault.none ~params ~rep = None))
    (Camp.coordinates design)

let test_fault_rate_one_always_fires () =
  let plan = { Fault.none with Fault.fp_crash = 1. } in
  List.iter
    (fun (params, rep) ->
      match Fault.at plan ~params ~rep with
      | Some { Fault.f_kind = Fault.Crash; _ } -> ()
      | _ -> Alcotest.fail "rate-1 crash plan must crash every coordinate")
    (Camp.coordinates design)

let test_fault_spec_roundtrip () =
  let plan =
    { Fault.fp_seed = 9; fp_crash = 0.05; fp_hang = 0.02; fp_straggler = 0.04;
      fp_corrupt = 0.01; fp_persistent = 0.25; fp_transient_attempts = 2 }
  in
  (match Fault.of_spec (Fault.spec_of plan) with
  | Ok p -> Alcotest.(check bool) "spec_of/of_spec roundtrip" true (p = plan)
  | Error e -> Alcotest.fail e);
  (match Fault.of_spec "" with
  | Ok p -> Alcotest.(check bool) "empty spec is the clean plan" true
      (p = Fault.none)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Fault.of_spec bad with
      | Ok _ -> Alcotest.fail ("spec accepted: " ^ bad)
      | Error _ -> ())
    [ "crash=2"; "crash"; "frobnicate=0.5"; "attempts=0"; "crash=-0.1" ]

let test_transient_expires () =
  let f = { Fault.f_kind = Fault.Crash; f_persistence = Fault.Transient 2 } in
  Alcotest.(check bool) "fires on attempt 0" true
    (Fault.active f ~attempt:0 = Some Fault.Crash);
  Alcotest.(check bool) "fires on attempt 1" true
    (Fault.active f ~attempt:1 = Some Fault.Crash);
  Alcotest.(check bool) "expired on attempt 2" true
    (Fault.active f ~attempt:2 = None);
  let p = { f with Fault.f_persistence = Fault.Persistent } in
  Alcotest.(check bool) "persistent never expires" true
    (Fault.active p ~attempt:99 = Some Fault.Crash)

(* -- fault-free bit-identity ------------------------------------------------- *)

let test_campaign_identity () =
  let clean = Exp.run_design tiny_app machine design in
  let report = Camp.run tiny_app machine design in
  Alcotest.(check int) "one attempt per coordinate"
    (List.length clean) report.Camp.cp_attempts;
  Alcotest.(check int) "no retries" 0 report.Camp.cp_retries;
  Alcotest.(check bool) "bit-identical to run_design" true
    (compare report.Camp.cp_runs clean = 0)

let test_campaign_identity_metrics_parity () =
  (* Per-run simulator metrics must match run_design's exactly; the
     campaign merely adds its own campaign.* counters on top. *)
  let snap_of f =
    let m = Obs_metrics.create () in
    f m;
    Obs_metrics.snapshot m
  in
  let clean =
    snap_of (fun m -> ignore (Exp.run_design ~metrics:m tiny_app machine design))
  in
  let camp =
    snap_of (fun m -> ignore (Camp.run ~metrics:m tiny_app machine design))
  in
  List.iter
    (fun (name, v) ->
      Alcotest.(check (option int)) ("counter " ^ name) (Some v)
        (Obs_metrics.find_counter camp name))
    clean.Obs_metrics.counters;
  Alcotest.(check (option int)) "campaign.attempts"
    (Some (List.length (Camp.coordinates design)))
    (Obs_metrics.find_counter camp "campaign.attempts");
  Alcotest.(check (option int)) "campaign.retries" (Some 0)
    (Obs_metrics.find_counter camp "campaign.retries")

(* -- retries and abandonment ------------------------------------------------- *)

(* A plan whose transient faults always die before the retry budget:
   every coordinate must recover and the surviving dataset must be
   bit-identical to the clean one. *)
let transient_plan =
  { Fault.none with
    Fault.fp_seed = 5; fp_crash = 0.2; fp_hang = 0.15; fp_persistent = 0.;
    fp_transient_attempts = 2 }

let test_transient_recovery () =
  let clean = Exp.run_design tiny_app machine design in
  let report =
    Camp.run ~plan:transient_plan
      ~retry:{ Camp.default_retry with Camp.rt_max_attempts = 3 }
      tiny_app machine design
  in
  Alcotest.(check int) "nothing abandoned" 0 report.Camp.cp_abandoned;
  Alcotest.(check bool) "faults actually fired" true
    (report.Camp.cp_retries > 0);
  Alcotest.(check bool) "retried runs bit-identical to clean" true
    (compare report.Camp.cp_runs clean = 0);
  Alcotest.(check bool) "failed attempts waste core-hours" true
    (report.Camp.cp_wasted_core_hours > 0.);
  Alcotest.(check bool) "retries pay backoff" true
    (report.Camp.cp_backoff_core_hours > 0.)

let test_persistent_abandonment () =
  let plan =
    { Fault.none with
      Fault.fp_seed = 3; fp_crash = 0.4; fp_persistent = 1. }
  in
  let report = Camp.run ~plan tiny_app machine design in
  Alcotest.(check bool) "some coordinates abandoned" true
    (report.Camp.cp_abandoned > 0);
  Alcotest.(check int) "records cover every coordinate"
    (List.length (Camp.coordinates design))
    (List.length report.Camp.cp_records);
  Alcotest.(check int) "runs + abandoned = coordinates"
    (List.length (Camp.coordinates design))
    (List.length report.Camp.cp_runs + report.Camp.cp_abandoned);
  (* Every abandoned record burned the full attempt budget. *)
  List.iter
    (fun r ->
      match r.Camp.rc_outcome with
      | Camp.Abandoned kind ->
        Alcotest.(check int) "all attempts consumed"
          Camp.default_retry.Camp.rt_max_attempts r.Camp.rc_attempts;
        Alcotest.(check string) "abandoned by the crash" "crash" kind
      | Camp.Completed _ -> ())
    report.Camp.cp_records;
  (* C3: the validation layer must report exactly the dropped configs. *)
  let gaps = Perf_taint.Validation.grid_gaps ~design report.Camp.cp_runs in
  Alcotest.(check int) "expected grid size" 6 gaps.Perf_taint.Validation.gr_expected;
  Alcotest.(check bool) "incomplete grid detected" false
    (Perf_taint.Validation.complete_grid gaps);
  Alcotest.(check int) "complete + partial + missing = expected"
    gaps.Perf_taint.Validation.gr_expected
    (gaps.Perf_taint.Validation.gr_complete
    + List.length gaps.Perf_taint.Validation.gr_partial
    + List.length gaps.Perf_taint.Validation.gr_missing)

let test_grid_gaps_clean () =
  let runs = Exp.run_design tiny_app machine design in
  let gaps = Perf_taint.Validation.grid_gaps ~design runs in
  Alcotest.(check bool) "clean campaign leaves no gaps" true
    (Perf_taint.Validation.complete_grid gaps);
  Alcotest.(check int) "all complete" 6 gaps.Perf_taint.Validation.gr_complete

(* -- journal ----------------------------------------------------------------- *)

let sample_records () =
  let report =
    Camp.run ~plan:transient_plan
      ~retry:{ Camp.default_retry with Camp.rt_max_attempts = 3 }
      tiny_app machine design
  in
  report.Camp.cp_records

let test_record_roundtrip () =
  List.iter
    (fun r ->
      match Camp.record_of_line ~mode:design.Exp.mode (Camp.record_to_line r) with
      | Ok r' ->
        Alcotest.(check bool) "journal line roundtrips exactly" true
          (compare r r' = 0)
      | Error e -> Alcotest.fail e)
    (sample_records ());
  (* An abandoned record must roundtrip too. *)
  let ab =
    { Camp.rc_params = [ ("n", 2.); ("p", 4.) ]; rc_rep = 1; rc_attempts = 3;
      rc_faults = [ "crash"; "hang"; "crash" ]; rc_wasted_s = 1.5;
      rc_backoff_s = 90.; rc_outcome = Camp.Abandoned "crash" }
  in
  match Camp.record_of_line ~mode:design.Exp.mode (Camp.record_to_line ab) with
  | Ok r' -> Alcotest.(check bool) "abandoned roundtrip" true (compare ab r' = 0)
  | Error e -> Alcotest.fail e

let test_journal_rejects_garbage () =
  (match Camp.record_of_line ~mode:design.Exp.mode "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Camp.record_of_line ~mode:design.Exp.mode "{\"params\":3}" with
  | Ok _ -> Alcotest.fail "wrong shape accepted"
  | Error _ -> ()

let with_temp_journal f =
  let path = Filename.temp_file "campaign" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_kill_resume_bit_identity () =
  with_temp_journal @@ fun journal ->
  let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
  let uninterrupted =
    Camp.run ~plan:transient_plan ~retry tiny_app machine design
  in
  (* Kill after 5 coordinates... *)
  let partial =
    Camp.run_journaled ~plan:transient_plan ~retry ~limit:5 ~journal
      ~resume:false tiny_app machine design
  in
  Alcotest.(check bool) "partial campaign interrupted" true
    partial.Camp.cp_interrupted;
  (* ...then resume from the journal. *)
  let resumed =
    Camp.run_journaled ~plan:transient_plan ~retry ~journal ~resume:true
      tiny_app machine design
  in
  Alcotest.(check int) "5 coordinates restored" 5 resumed.Camp.cp_resumed;
  Alcotest.(check bool) "resumed not interrupted" false
    resumed.Camp.cp_interrupted;
  Alcotest.(check bool) "resumed runs bit-identical to uninterrupted" true
    (compare resumed.Camp.cp_runs uninterrupted.Camp.cp_runs = 0);
  Alcotest.(check bool) "resumed records bit-identical" true
    (compare resumed.Camp.cp_records uninterrupted.Camp.cp_records = 0);
  (* The model fitted from the resumed dataset is the same model. *)
  let fit runs =
    let data = Exp.total_dataset runs ~params:[ "n" ] in
    (Model.Search.multi data).Model.Search.model
  in
  Alcotest.(check string) "same fitted model"
    (Model.Expr.to_string (fit uninterrupted.Camp.cp_runs))
    (Model.Expr.to_string (fit resumed.Camp.cp_runs))

let test_resume_rejects_mismatched_header () =
  with_temp_journal @@ fun journal ->
  ignore
    (Camp.run_journaled ~plan:transient_plan ~limit:2 ~journal ~resume:false
       tiny_app machine design);
  let other = { design with Exp.seed = design.Exp.seed + 1 } in
  try
    ignore
      (Camp.run_journaled ~plan:transient_plan ~journal ~resume:true tiny_app
         machine other);
    Alcotest.fail "mismatched journal accepted"
  with Failure _ -> ()

(* A journal whose last line was torn mid-write (the on-disk state a
   SIGKILL leaves behind): resume must cut the partial record off, count
   it in campaign.journal_torn, re-execute its coordinate, and converge
   on the uninterrupted dataset bit-identically. *)
let test_resume_tolerates_torn_trailing_line () =
  with_temp_journal @@ fun journal ->
  let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
  let uninterrupted =
    Camp.run ~plan:transient_plan ~retry tiny_app machine design
  in
  ignore
    (Camp.run_journaled ~plan:transient_plan ~retry ~limit:5 ~journal
       ~resume:false tiny_app machine design);
  (* Tear the trailing line: keep only half of the final record. *)
  let content = read_file journal in
  let body = String.sub content 0 (String.length content - 1) in
  let last_nl = String.rindex body '\n' in
  let len = String.length body - last_nl - 1 in
  let oc = open_out_bin journal in
  output_string oc (String.sub content 0 (last_nl + 1 + (len / 2)));
  close_out oc;
  (match Camp.load_journal ~mode:design.Exp.mode
           ~expected_header:
             (Camp.header_line ~app_name:tiny_app.Spec.aname
                ~plan:transient_plan ~retry design)
           journal
   with
  | Error e -> Alcotest.fail e
  | Ok (records, torn) ->
    Alcotest.(check int) "torn line detected" 1 torn;
    Alcotest.(check int) "clean prefix survives" 4 (List.length records));
  let metrics = Obs_metrics.create () in
  let resumed =
    Camp.run_journaled ~metrics ~plan:transient_plan ~retry ~journal
      ~resume:true tiny_app machine design
  in
  Alcotest.(check int) "4 coordinates restored" 4 resumed.Camp.cp_resumed;
  Alcotest.(check (option int)) "campaign.journal_torn counted" (Some 1)
    (Obs_metrics.find_counter (Obs_metrics.snapshot metrics)
       "campaign.journal_torn");
  Alcotest.(check bool) "resumed records bit-identical to uninterrupted" true
    (compare resumed.Camp.cp_records uninterrupted.Camp.cp_records = 0);
  (* The rewritten journal is canonical again: loading it back yields
     every record with nothing torn. *)
  match Camp.load_journal ~mode:design.Exp.mode
          ~expected_header:
            (Camp.header_line ~app_name:tiny_app.Spec.aname
               ~plan:transient_plan ~retry design)
          journal
  with
  | Error e -> Alcotest.fail e
  | Ok (records, torn) ->
    Alcotest.(check int) "no torn line after rewrite" 0 torn;
    Alcotest.(check int) "full journal"
      (List.length uninterrupted.Camp.cp_records)
      (List.length records)

(* A parse failure before the last line is corruption, not a torn
   flush — the load must refuse, naming the journal. *)
let test_load_rejects_mid_file_corruption () =
  with_temp_journal @@ fun journal ->
  let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 } in
  ignore
    (Camp.run_journaled ~plan:transient_plan ~retry ~limit:5 ~journal
       ~resume:false tiny_app machine design);
  let lines = String.split_on_char '\n' (read_file journal) in
  let oc = open_out_bin journal in
  List.iteri
    (fun i l ->
      if l <> "" then begin
        output_string oc (if i = 2 then "{\"corrupt\":" else l);
        output_char oc '\n'
      end)
    lines;
  close_out oc;
  match Camp.load_journal ~mode:design.Exp.mode
          ~expected_header:
            (Camp.header_line ~app_name:tiny_app.Spec.aname
               ~plan:transient_plan ~retry design)
          journal
  with
  | Ok _ -> Alcotest.fail "mid-file corruption accepted"
  | Error _ -> ()

(* -- retry validation --------------------------------------------------------- *)

let test_retry_validation () =
  let expect_invalid field retry =
    try
      ignore (Camp.run ~retry tiny_app machine design);
      Alcotest.fail (field ^ " accepted")
    with Invalid_argument msg ->
      Alcotest.(check bool) (field ^ " named in the message") true
        (contains msg field)
  in
  expect_invalid "rt_max_attempts"
    { Camp.default_retry with Camp.rt_max_attempts = 0 };
  expect_invalid "rt_backoff_s"
    { Camp.default_retry with Camp.rt_backoff_s = -1. };
  expect_invalid "rt_backoff_s"
    { Camp.default_retry with Camp.rt_backoff_s = Float.nan };
  expect_invalid "rt_backoff_mult"
    { Camp.default_retry with Camp.rt_backoff_mult = 0.5 };
  expect_invalid "rt_backoff_mult"
    { Camp.default_retry with Camp.rt_backoff_mult = Float.nan };
  expect_invalid "rt_hang_timeout_s"
    { Camp.default_retry with Camp.rt_hang_timeout_s = 0. };
  expect_invalid "rt_hang_timeout_s"
    { Camp.default_retry with Camp.rt_hang_timeout_s = Float.nan };
  (* The defaults and any sane policy still pass. *)
  ignore (Camp.run tiny_app machine design)

(* -- robust fit under degradation ------------------------------------------- *)

(* The term that contributes most at the top corner of the grid — the
   asymptotically decisive part of the model.  Weak secondary terms
   (lulesh's communication term contributes <1% of the total at the
   largest configuration) flip under noise for the classic fit too, so
   the stability assertion is about the decisive term only. *)
let dominant_term (m : Model.Expr.model) ~at =
  let contribution (t : Model.Expr.compound_term) =
    Float.abs
      (t.Model.Expr.coeff *. Model.Expr.eval_factors t.Model.Expr.factors at)
  in
  match m.Model.Expr.terms with
  | [] -> None
  | ts ->
    let best =
      List.fold_left
        (fun a t -> if contribution t > contribution a then t else a)
        (List.hd ts) ts
    in
    Some best.Model.Expr.factors

(* A coarse search space with well-separated candidate shapes, like the
   campaign fuzz oracle's: with the full Extra-P exponent lattice, 2%
   noise alone flips between neighbouring exponents (2.25 vs 8/3), which
   would make this test assert stability the classic fit doesn't have
   either. *)
let coarse_config =
  { Model.Search.default_config with
    Model.Search.exponents = [ 0.; 0.5; 1.; 2.; 3. ];
    log_exponents = [ 0; 1 ];
    max_terms = 2 }

(* The acceptance bar: <= 10% transient faults (including stragglers and
   corrupted-duration outliers that complete and pollute the dataset),
   plus retries and MAD rejection, must select the same best model term
   as a clean campaign. *)
let degraded_plan seed =
  { Fault.fp_seed = seed; fp_crash = 0.03; fp_hang = 0.02;
    fp_straggler = 0.03; fp_corrupt = 0.02; fp_persistent = 0.;
    fp_transient_attempts = 2 }

let robust_same_term app grid fit_params seed () =
  let design =
    { Exp.grid; reps = 5; mode = Instr.Full; sigma = 0.02; seed = 42 }
  in
  let clean = Exp.run_design app machine design in
  let report =
    Camp.run ~plan:(degraded_plan seed)
      ~retry:{ Camp.default_retry with Camp.rt_max_attempts = 3 }
      app machine design
  in
  Alcotest.(check int) "nothing abandoned" 0 report.Camp.cp_abandoned;
  Alcotest.(check bool) "faults degraded the dataset" true
    (List.exists (fun r -> r.Camp.rc_faults <> []) report.Camp.cp_records);
  let at =
    List.filter_map
      (fun (p, vs) ->
        if List.mem p fit_params then
          Some (p, List.fold_left Float.max neg_infinity vs)
        else None)
      grid
  in
  let best runs robust =
    let data = Exp.total_dataset runs ~params:fit_params in
    let m =
      if robust then
        (fst (Model.Search.multi_robust ~config:coarse_config data))
          .Model.Search.model
      else (Model.Search.multi ~config:coarse_config data).Model.Search.model
    in
    dominant_term m ~at
  in
  let clean_best = best clean false in
  Alcotest.(check bool) "clean fit found a scaling term" true
    (clean_best <> None);
  Alcotest.(check bool) "robust fit recovers the clean best term" true
    (clean_best = best report.Camp.cp_runs true)

let test_robust_fit_lulesh =
  robust_same_term Apps.Lulesh_spec.app
    [ ("p", Apps.Lulesh_spec.p_values);
      ("size", Apps.Lulesh_spec.size_values); ("r", [ 8. ]) ]
    [ "p"; "size" ] 17

let test_robust_fit_minicg =
  robust_same_term Apps.Minicg_spec.app
    [ ("p", Apps.Minicg_spec.p_values); ("n", Apps.Minicg_spec.n_values);
      ("r", [ 8. ]) ]
    [ "p"; "n" ] 23

(* -- observability ----------------------------------------------------------- *)

let test_campaign_counters_in_snapshot () =
  let m = Obs_metrics.create () in
  ignore
    (Camp.run ~metrics:m ~plan:transient_plan
       ~retry:{ Camp.default_retry with Camp.rt_max_attempts = 3 }
       tiny_app machine design);
  let snap = Obs_metrics.snapshot m in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " interned") true
        (Obs_metrics.find_counter snap name <> None))
    Camp.counters;
  let faults =
    List.fold_left
      (fun acc kind ->
        acc
        + Option.value ~default:0
            (Obs_metrics.find_counter snap ("campaign.faults." ^ kind)))
      0 Fault.kind_names
  in
  Alcotest.(check bool) "fault counters recorded the injections" true
    (faults > 0);
  Alcotest.(check (option int)) "retry counter matches report"
    (Obs_metrics.find_counter snap "campaign.retries")
    (Some
       (let report =
          Camp.run ~plan:transient_plan
            ~retry:{ Camp.default_retry with Camp.rt_max_attempts = 3 }
            tiny_app machine design
        in
        report.Camp.cp_retries))

(* -- documentation drift ----------------------------------------------------- *)

(* [Campaign.counters] is the single definition of the campaign counter
   names; the table in doc/OBSERVABILITY.md must list every row
   verbatim (same pattern as the engine's instruction counters). *)
let test_campaign_counter_doc_in_sync () =
  let path =
    List.find Sys.file_exists
      [ "../doc/OBSERVABILITY.md"; "doc/OBSERVABILITY.md" ]
  in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "doc/OBSERVABILITY.md lists %s with its meaning" name)
        true (contains doc row))
    Camp.counters

(* -- journal JSON round-trip --------------------------------------------------
   The checkpoint journal (and now the serving catalog and the daemon's
   wire protocol) all ride [Measure.Jsonio]; its string escaping must
   round-trip every byte — control characters, quotes, backslashes and
   non-ASCII bytes included — or a resumed campaign would diverge on the
   first awkward app name. *)

let any_string = QCheck.string_gen QCheck.Gen.char

let prop_jsonio_string_roundtrip =
  QCheck.Test.make ~count:1000
    ~name:"Jsonio string escaping round-trips arbitrary bytes" any_string
    (fun s ->
      match Measure.Jsonio.(parse (to_string (Str s))) with
      | Ok (Measure.Jsonio.Str s') -> String.equal s s'
      | _ -> false)

let prop_jsonio_obj_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"Jsonio object with arbitrary keys/values round-trips"
    QCheck.(small_list (pair any_string any_string))
    (fun fields ->
      let v =
        Measure.Jsonio.Obj
          (List.map (fun (k, x) -> (k, Measure.Jsonio.Str x)) fields)
      in
      match Measure.Jsonio.parse (Measure.Jsonio.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let test_jsonio_adversarial_strings () =
  List.iter
    (fun s ->
      match Measure.Jsonio.(parse (to_string (Str s))) with
      | Ok (Measure.Jsonio.Str s') ->
        Alcotest.(check string) (Printf.sprintf "round-trip %S" s) s s'
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S came back as a non-string" s)
      | Error e -> Alcotest.fail (Printf.sprintf "%S: %s" s e))
    [
      "";
      "\"";
      "\\";
      "\\\\\"";
      "a\"b\\c\nd\te\rf";
      "\x00\x01\x1f";
      "caf\xc3\xa9 \xff\xfe";
      "{\"op\":\"stats\"}";
      "trailing backslash \\";
    ]

let tests =
  [
    Alcotest.test_case "fault draws are deterministic" `Quick
      test_fault_deterministic;
    Alcotest.test_case "clean plan never fires" `Quick
      test_fault_none_never_fires;
    Alcotest.test_case "rate-1 plan always fires" `Quick
      test_fault_rate_one_always_fires;
    Alcotest.test_case "fault spec roundtrip" `Quick test_fault_spec_roundtrip;
    Alcotest.test_case "transient faults expire" `Quick test_transient_expires;
    Alcotest.test_case "fault-free campaign = run_design" `Quick
      test_campaign_identity;
    Alcotest.test_case "fault-free metrics parity" `Quick
      test_campaign_identity_metrics_parity;
    Alcotest.test_case "transient faults recover bit-identically" `Quick
      test_transient_recovery;
    Alcotest.test_case "persistent faults abandon coordinates" `Quick
      test_persistent_abandonment;
    Alcotest.test_case "clean grid has no gaps" `Quick test_grid_gaps_clean;
    Alcotest.test_case "journal record roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "journal rejects garbage" `Quick
      test_journal_rejects_garbage;
    Alcotest.test_case "kill/resume is bit-identical" `Quick
      test_kill_resume_bit_identity;
    Alcotest.test_case "resume rejects a mismatched journal" `Quick
      test_resume_rejects_mismatched_header;
    Alcotest.test_case "resume tolerates a torn trailing line" `Quick
      test_resume_tolerates_torn_trailing_line;
    Alcotest.test_case "load rejects mid-file corruption" `Quick
      test_load_rejects_mid_file_corruption;
    Alcotest.test_case "retry fields validated on entry" `Quick
      test_retry_validation;
    Alcotest.test_case "robust fit survives faults (lulesh)" `Quick
      test_robust_fit_lulesh;
    Alcotest.test_case "robust fit survives faults (minicg)" `Quick
      test_robust_fit_minicg;
    Alcotest.test_case "campaign counters in the snapshot" `Quick
      test_campaign_counters_in_snapshot;
    Alcotest.test_case "campaign counter table in sync with doc" `Quick
      test_campaign_counter_doc_in_sync;
    Alcotest.test_case "adversarial journal strings round-trip" `Quick
      test_jsonio_adversarial_strings;
    Seeded.to_alcotest prop_jsonio_string_roundtrip;
    Seeded.to_alcotest prop_jsonio_obj_roundtrip;
  ]
