(** Tests of the deterministic domain pool ([lib/par]) and its
    integration points: [map]/[map_init] semantics (input order,
    exception routing, worker-local state), campaign and model-search
    parallel-vs-serial bit-identity, fuzz-driver report identity, and
    the [par.*] counter table in doc/OBSERVABILITY.md. *)

module P = Par.Pool
module M = Obs_metrics
module Exp = Measure.Experiment
module Spec = Measure.Spec
module Instr = Measure.Instrument
module Fault = Measure.Fault
module Camp = Measure.Campaign

let machine = Mpi_sim.Machine.skylake_cluster

(* Jobs counts chosen to cover the degenerate pool (1), the smallest
   real one (2), and one that exceeds both the host's cores and the
   item-count/chunking sweet spot (7). *)
let jobs_axis = [ 1; 2; 7 ]

(* -- map semantics ----------------------------------------------------------- *)

let test_map_matches_list_map () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + (x mod 7) in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      P.with_pool ~jobs (fun pool ->
          List.iter
            (fun chunk ->
              Alcotest.(check (list int))
                (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
                expected
                (P.map pool ~chunk f xs))
            [ 1; 3; 64 ];
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d default chunk" jobs)
            expected (P.map pool f xs)))
    jobs_axis

let test_map_edge_inputs () =
  P.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty input" [] (P.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 42 ] (P.map pool succ [ 41 ]);
      Alcotest.(check (list int))
        "fewer items than workers" [ 1; 2 ]
        (P.map pool succ [ 0; 1 ]))

exception Boom of int

let test_exception_lowest_index_wins () =
  let xs = List.init 50 Fun.id in
  let f x = if x = 13 || x = 37 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      P.with_pool ~jobs (fun pool ->
          (match P.map pool ~chunk:1 f xs with
          | _ -> Alcotest.fail "map over raising tasks must raise"
          | exception Boom i ->
            Alcotest.(check int)
              (Printf.sprintf "lowest failing index at jobs=%d" jobs)
              13 i);
          (* The failed map must not wedge the pool. *)
          Alcotest.(check (list int)) "pool usable after exception"
            (List.map succ xs)
            (P.map pool succ xs)))
    jobs_axis

let test_shutdown_idempotent_then_serial () =
  let pool = P.create ~jobs:4 () in
  let xs = List.init 20 Fun.id in
  Alcotest.(check (list int)) "before shutdown" (List.map succ xs)
    (P.map pool succ xs);
  P.shutdown pool;
  P.shutdown pool;
  Alcotest.(check (list int)) "after shutdown maps run serially"
    (List.map succ xs) (P.map pool succ xs)

let test_map_init_state_per_domain () =
  let inits = Atomic.make 0 in
  P.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 200 Fun.id in
      let results =
        P.map_init pool ~chunk:1
          ~init:(fun () ->
            Atomic.incr inits;
            Buffer.create 16)
          (fun buf x ->
            Buffer.clear buf;
            Buffer.add_string buf (string_of_int x);
            int_of_string (Buffer.contents buf))
          xs
      in
      Alcotest.(check (list int)) "map_init results in order" xs results;
      let n = Atomic.get inits in
      Alcotest.(check bool)
        (Printf.sprintf "at most one state per domain (%d inits)" n)
        true
        (n >= 1 && n <= 4))

let test_counters () =
  let metrics = M.create () in
  P.with_pool ~metrics ~jobs:3 (fun pool ->
      ignore (P.map pool succ (List.init 30 Fun.id));
      ignore (P.map pool succ (List.init 10 Fun.id)));
  let s = M.snapshot metrics in
  Alcotest.(check (option int)) "par.pools" (Some 1)
    (M.find_counter s "par.pools");
  Alcotest.(check (option int)) "par.maps" (Some 2)
    (M.find_counter s "par.maps");
  Alcotest.(check (option int)) "par.tasks" (Some 40)
    (M.find_counter s "par.tasks");
  match M.find_counter s "par.chunks" with
  | Some c -> Alcotest.(check bool) "chunks cover both maps" true (c >= 2)
  | None -> Alcotest.fail "par.chunks not registered"

(* -- campaign bit-identity ---------------------------------------------------- *)

let tiny_app =
  let kernel name ~tiny calls per_call deps =
    Spec.kernel ~kind:Spec.Compute ~tiny
      ~calls:(fun _ -> calls)
      ~base_time:(fun ps _ -> calls *. per_call *. Spec.param ps "n")
      ~truth_deps:deps name
  in
  {
    Spec.aname = "tiny";
    kernels = [ kernel "hot" ~tiny:false 10. 1e-4 [ "n" ] ];
    model_params = [ "n" ];
  }

let design =
  { Exp.grid = [ ("n", [ 2.; 4.; 8. ]); ("p", [ 2.; 4. ]) ];
    reps = 3; mode = Instr.Full; sigma = 0.01; seed = 7 }

let transient_plan =
  { Fault.none with
    Fault.fp_seed = 11; fp_crash = 0.1; fp_hang = 0.05; fp_persistent = 0.;
    fp_transient_attempts = 2 }

let retry = { Camp.default_retry with Camp.rt_max_attempts = 3 }

let test_campaign_parallel_identity () =
  let serial = Camp.run ~plan:transient_plan ~retry tiny_app machine design in
  List.iter
    (fun jobs ->
      P.with_pool ~jobs (fun pool ->
          let par =
            Camp.run ~pool ~plan:transient_plan ~retry tiny_app machine design
          in
          Alcotest.(check bool)
            (Printf.sprintf "report bit-identical at jobs=%d" jobs)
            true
            (compare serial par = 0)))
    jobs_axis

let with_temp_journal f =
  let path = Filename.temp_file "par-campaign" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_campaign_journal_byte_identity () =
  with_temp_journal @@ fun serial_journal ->
  with_temp_journal @@ fun par_journal ->
  ignore
    (Camp.run_journaled ~plan:transient_plan ~retry ~journal:serial_journal
       ~resume:false tiny_app machine design);
  P.with_pool ~jobs:3 (fun pool ->
      ignore
        (Camp.run_journaled ~pool ~plan:transient_plan ~retry
           ~journal:par_journal ~resume:false tiny_app machine design));
  Alcotest.(check bool) "journals byte-identical" true
    (read_file serial_journal = read_file par_journal)

let test_campaign_kill_resume_parallel () =
  with_temp_journal @@ fun journal ->
  let uninterrupted =
    Camp.run ~plan:transient_plan ~retry tiny_app machine design
  in
  P.with_pool ~jobs:4 (fun pool ->
      let partial =
        Camp.run_journaled ~pool ~plan:transient_plan ~retry ~limit:5 ~journal
          ~resume:false tiny_app machine design
      in
      Alcotest.(check bool) "partial campaign interrupted" true
        partial.Camp.cp_interrupted;
      let resumed =
        Camp.run_journaled ~pool ~plan:transient_plan ~retry ~journal
          ~resume:true tiny_app machine design
      in
      Alcotest.(check bool) "resumed not interrupted" false
        resumed.Camp.cp_interrupted;
      Alcotest.(check bool) "resumed records bit-identical to uninterrupted"
        true
        (compare resumed.Camp.cp_records uninterrupted.Camp.cp_records = 0))

(* -- model-search bit-identity ------------------------------------------------ *)

let search_identity app p_values size_values name =
  let design =
    { Exp.grid = [ ("p", p_values); ("size", size_values); ("r", [ 8. ]) ];
      reps = 3; mode = Instr.Full; sigma = 0.02; seed = 42 }
  in
  let runs = Exp.run_design app machine design in
  let data = Exp.total_dataset runs ~params:[ "p"; "size" ] in
  let serial = Model.Search.multi_robust data in
  List.iter
    (fun jobs ->
      P.with_pool ~jobs (fun pool ->
          let config =
            { Model.Search.default_config with Model.Search.pool = Some pool }
          in
          let par = Model.Search.multi_robust ~config data in
          Alcotest.(check bool)
            (Printf.sprintf "%s robust fit identical at jobs=%d" name jobs)
            true
            (compare serial par = 0)))
    jobs_axis

let test_search_parallel_identity_lulesh () =
  search_identity Apps.Lulesh_spec.app Apps.Lulesh_spec.p_values
    Apps.Lulesh_spec.size_values "lulesh"

let test_search_parallel_identity_minicg () =
  search_identity Apps.Minicg_spec.app Apps.Minicg_spec.p_values
    Apps.Minicg_spec.n_values "minicg"

(* -- fuzz-driver report identity ---------------------------------------------- *)

(* A synthetic always-deterministic oracle that fails on a stable
   fraction of generated programs, so the parallel driver's
   first-failure selection and shrinking path is exercised, not just
   the all-pass path. *)
let synthetic_oracle =
  { Fuzz.Oracle.name = "synthetic";
    check =
      (fun p ->
        if String.length (Ir.Pp.program_to_string p) mod 3 = 0 then
          Fuzz.Oracle.Fail "printed length divisible by 3"
        else Fuzz.Oracle.Pass) }

let test_fuzz_parallel_identity () =
  let oracles =
    [ Fuzz.Oracle.printer_roundtrip; Fuzz.Oracle.tripcount; synthetic_oracle ]
  in
  let serial = Fuzz.Driver.run_campaign ~oracles ~seed:5 ~budget:30 () in
  List.iter
    (fun jobs ->
      P.with_pool ~jobs (fun pool ->
          let par =
            Fuzz.Driver.run_campaign ~pool ~oracles ~seed:5 ~budget:30 ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "fuzz report bit-identical at jobs=%d" jobs)
            true
            (compare serial par = 0)))
    jobs_axis

(* -- documentation drift ------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* [Par.Pool.counters] is the single definition of the pool counter
   names; the table in doc/OBSERVABILITY.md must list every row
   verbatim. *)
let test_counter_doc_in_sync () =
  let path =
    List.find Sys.file_exists
      [ "../doc/OBSERVABILITY.md"; "doc/OBSERVABILITY.md" ]
  in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "doc/OBSERVABILITY.md lists %s with its meaning" name)
        true (contains doc row))
    P.counters

let tests =
  [
    Alcotest.test_case "map matches List.map at 1/2/7 jobs" `Quick
      test_map_matches_list_map;
    Alcotest.test_case "map edge inputs" `Quick test_map_edge_inputs;
    Alcotest.test_case "lowest-index exception wins; pool survives" `Quick
      test_exception_lowest_index_wins;
    Alcotest.test_case "shutdown idempotent, serial afterwards" `Quick
      test_shutdown_idempotent_then_serial;
    Alcotest.test_case "map_init: one state per domain" `Quick
      test_map_init_state_per_domain;
    Alcotest.test_case "par.* counters" `Quick test_counters;
    Alcotest.test_case "campaign parallel bit-identity" `Quick
      test_campaign_parallel_identity;
    Alcotest.test_case "campaign journal byte-identity" `Quick
      test_campaign_journal_byte_identity;
    Alcotest.test_case "campaign kill/resume under a pool" `Quick
      test_campaign_kill_resume_parallel;
    Alcotest.test_case "search bit-identity (lulesh)" `Quick
      test_search_parallel_identity_lulesh;
    Alcotest.test_case "search bit-identity (minicg)" `Quick
      test_search_parallel_identity_minicg;
    Alcotest.test_case "fuzz report bit-identity" `Quick
      test_fuzz_parallel_identity;
    Alcotest.test_case "par counter table in sync with doc" `Quick
      test_counter_doc_in_sync;
  ]
