(** Tests of the fuzzing subsystem itself: generator coverage, shrinker
    termination/minimality, campaign cleanliness on the real pipeline, the
    corpus save/replay cycle — and the crucial negative control: a
    deliberately weakened taint analysis must be caught by the soundness
    oracle with a small shrunk counterexample. *)

module G = Fuzz.Gen
module Sh = Fuzz.Shrink
module O = Fuzz.Oracle
module D = Fuzz.Driver

let rec stmt_has_loop = function
  | G.For _ | G.While_half _ -> true
  | G.Seq (a, b) | G.If (_, a, b) -> stmt_has_loop a || stmt_has_loop b
  | G.Work _ | G.Call_helper _ | G.Shared_store _ | G.Float_work _ -> false

let has_loop (p : G.prog) =
  stmt_has_loop p.G.main || List.exists stmt_has_loop p.G.helpers

(* The grammar must not degenerate: loops, branches and calls all have to
   appear often enough for the oracles to bite. *)
let test_generator_coverage () =
  let st = Fuzz.Seed.state () in
  let progs = List.init 300 (fun _ -> G.generate st) in
  let count pred = List.length (List.filter pred progs) in
  let loops = count has_loop in
  let helpers = count (fun p -> p.G.helpers <> []) in
  let multi = count (fun p -> p.G.nparams > 1) in
  Alcotest.(check bool)
    (Printf.sprintf "loops in most programs (%d/300)" loops)
    true (loops > 150);
  Alcotest.(check bool)
    (Printf.sprintf "helpers present (%d/300)" helpers)
    true (helpers > 100);
  Alcotest.(check bool)
    (Printf.sprintf "multiple params (%d/300)" multi)
    true (multi > 100)

let prop_marked_params_found =
  QCheck.Test.make ~count:100 ~name:"every generated parameter is marked"
    Sh.arbitrary (fun p ->
      List.length (O.marked_params (G.to_program p)) = p.G.nparams)

let prop_shrink_decreases =
  QCheck.Test.make ~count:200 ~name:"every shrink candidate is smaller"
    Sh.arbitrary (fun p ->
      let n = Sh.size p in
      List.for_all (fun q -> Sh.size q < n) (Sh.candidates p))

let prop_minimize_fixpoint =
  QCheck.Test.make ~count:100 ~name:"minimize reaches a local minimum"
    Sh.arbitrary (fun p ->
      QCheck.assume (has_loop p);
      let small = Sh.minimize has_loop p in
      has_loop small
      && not (List.exists has_loop (Sh.candidates small)))

(* A short campaign over the real pipeline must be clean: this is the
   in-suite version of the CI `perf_taint fuzz` job. *)
let test_campaign_clean () =
  let report = D.run_campaign ~seed:(Fuzz.Seed.get ()) ~budget:200 () in
  List.iter
    (fun (r : D.oracle_result) ->
      match r.D.or_cx with
      | None -> ()
      | Some cx ->
        Alcotest.failf "oracle %s failed at program %d: %s@.%s" r.D.or_name
          cx.D.cx_index cx.D.cx_message cx.D.cx_text)
    report.D.rp_results

let test_save_and_replay () =
  let p = { G.nparams = 1; helpers = []; main = G.For (G.Bparam 0, G.Work 1) } in
  let prog = G.to_program p in
  let text = Ir.Pp.program_to_string prog in
  let cx =
    { D.cx_oracle = "manual"; cx_message = "not a real failure";
      cx_index = 0; cx_program = prog; cx_text = text;
      cx_lines =
        List.length (String.split_on_char '\n' (String.trim text)) }
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "pt-fuzz-corpus" in
  let path = D.save ~dir ~seed:7 cx in
  Alcotest.(check bool) "corpus file exists" true (Sys.file_exists path);
  let verdicts = D.replay_file path in
  Alcotest.(check int) "all oracles replayed" (List.length O.all)
    (List.length verdicts);
  List.iter
    (fun (name, v) ->
      match v with
      | O.Pass -> ()
      | O.Fail msg -> Alcotest.failf "replay failed %s: %s" name msg)
    verdicts;
  Sys.remove path

(* The engine refactor's equivalence criterion, as a test: a 200-program
   fixed-seed campaign dedicated to the policy-differential oracles finds
   no Taint-vs-Plain divergence and no Coverage inconsistency. *)
let test_policy_differential_campaign () =
  let report =
    D.run_campaign
      ~oracles:[ O.taint_vs_plain; O.coverage_consistency ]
      ~seed:(Fuzz.Seed.get ()) ~budget:200 ()
  in
  List.iter
    (fun (r : D.oracle_result) ->
      (match r.D.or_cx with
      | None -> ()
      | Some cx ->
        Alcotest.failf "policy divergence (%s) at program %d: %s@.%s"
          r.D.or_name cx.D.cx_index cx.D.cx_message cx.D.cx_text);
      Alcotest.(check int)
        (Printf.sprintf "oracle %s checked every program" r.D.or_name)
        200 r.D.or_runs)
    report.D.rp_results

(* The negative control the whole subsystem exists for: disable
   control-flow taint — a genuine soundness bug (DFSan without the
   paper's control-flow extension) — and the soundness oracle must
   produce a counterexample, shrunk below 30 lines of PIR. *)
let test_crippled_taint_is_caught () =
  let crippled =
    O.taint_soundness_with
      { O.interp_config with control_flow_taint = false }
  in
  let report =
    D.run_campaign ~oracles:[ crippled ] ~seed:(Fuzz.Seed.get ()) ~budget:500 ()
  in
  match D.counterexamples report with
  | [] ->
    Alcotest.fail
      "disabling control-flow taint was not detected by the soundness oracle"
  | cx :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "counterexample is small (%d lines)" cx.D.cx_lines)
      true (cx.D.cx_lines <= 30)

let tests =
  [
    Alcotest.test_case "generator covers loops/calls/params" `Quick
      test_generator_coverage;
    Seeded.to_alcotest prop_marked_params_found;
    Seeded.to_alcotest prop_shrink_decreases;
    Seeded.to_alcotest prop_minimize_fixpoint;
    Alcotest.test_case "campaign on the real pipeline is clean" `Quick
      test_campaign_clean;
    Alcotest.test_case "corpus save + replay" `Quick test_save_and_replay;
    Alcotest.test_case "200-case taint-vs-plain campaign finds no divergence"
      `Quick test_policy_differential_campaign;
    Alcotest.test_case "crippled taint analysis is caught and shrunk" `Quick
      test_crippled_taint_is_caught;
  ]
