let () =
  Alcotest.run "perf-taint"
    [
      ("ir", Suite_ir.tests);
      ("taint", Suite_taint.tests);
      ("interp", Suite_interp.tests);
      ("engine", Suite_engine.tests);
      ("compile", Suite_compile.tests);
      ("static", Suite_static.tests);
      ("measure", Suite_measure.tests);
      ("pipeline", Suite_pipeline.tests);
      ("model", Suite_model.tests);
      ("apps", Suite_apps.tests);
      ("core", Suite_core.tests);
      ("volume", Suite_volume.tests);
      ("stats", Suite_stats.tests);
      ("export", Suite_export.tests);
      ("obs", Suite_obs.tests);
      ("soundness", Suite_soundness.tests);
      ("fuzz", Suite_fuzz.tests);
      ("resilience", Suite_resilience.tests);
      ("shard", Suite_shard.tests);
      ("serve", Suite_serve.tests);
      ("profile", Suite_profile.tests);
      ("par", Suite_par.tests);
      ("cli", Suite_cli.tests);
    ]
