(** Property tests of Claim 1 on randomly generated programs, now driven
    by the shared [lib/fuzz] grammar: whenever changing a marked parameter
    changes a loop's observed iteration count, that loop (or a loop
    dynamically enclosing it) must carry the parameter's taint label.
    Also: exact search-space cardinality checks for the Extra-P
    heuristics. *)

module Obs = Interp.Observations

(* Claim 1, as the fuzzer's differential oracle: perturb each marked
   parameter and require the taint labels to account for every observed
   count difference.  The programs come from the full lib/fuzz grammar
   (calls, aliasing, floats, irregular nests, tainted branches) and
   failures shrink structurally before being printed. *)
let prop_loop_taint_soundness =
  QCheck.Test.make ~count:300 ~name:"Claim 1 on random programs"
    Fuzz.Shrink.arbitrary (fun p ->
      match Fuzz.Oracle.(check taint_soundness) (Fuzz.Gen.to_program p) with
      | Fuzz.Oracle.Pass -> true
      | Fuzz.Oracle.Fail msg -> QCheck.Test.fail_report msg)

(* The ablation direction: without control-flow taint, the data-flow-only
   dependency sets are a subset of the full ones. *)
let prop_control_flow_monotone =
  QCheck.Test.make ~count:150
    ~name:"control-flow taint only adds dependencies"
    Fuzz.Shrink.arbitrary (fun p ->
      let program = Fuzz.Gen.to_program p in
      let args =
        List.map
          (fun _ -> Ir.Types.VInt 6)
          (Ir.Types.find_func program program.Ir.Types.entry).Ir.Types.fparams
      in
      let deps config =
        let m = Interp.Machine.create ~config program in
        match Interp.Machine.run m args with
        | _ | (exception Interp.Machine.Budget_exceeded _) ->
          Some
            (Obs.loop_list (Interp.Machine.observations m)
            |> List.map (fun lo ->
                   ( (Obs.callpath_key lo.Obs.lo_callpath, lo.Obs.lo_header),
                     Taint.Label.names
                       (Interp.Machine.label_table m)
                       lo.Obs.lo_dep )))
        | exception Interp.Machine.Runtime_error _ -> None
      in
      let config =
        { Interp.Machine.default_config with max_steps = 500_000 }
      in
      match
        (deps config, deps { config with control_flow_taint = false })
      with
      | None, _ | _, None -> true (* crash: the validator oracle's business *)
      | Some full, Some dataflow_only ->
        List.for_all
          (fun (k, names) ->
            match List.assoc_opt k full with
            | Some full_names ->
              List.for_all (fun n -> List.mem n full_names) names
            | None -> false)
          dataflow_only)

(* -- search-space cardinality (the paper's heuristics) ------------------------ *)

let test_single_search_space_size () =
  (* 18 exponents x 3 log exponents - (0,0) = 53 simple terms;
     hypotheses: constant + 53 one-term + C(53,2) two-term = 1432. *)
  let r =
    Model.Search.single ~param:"p"
      (List.map (fun x -> (x, 1. +. x)) [ 2.; 4.; 8.; 16.; 32. ])
  in
  Alcotest.(check int) "single-parameter hypothesis count" 1432
    r.Model.Search.hypotheses_tried

let test_multi_search_space_small () =
  (* The paper: hundreds of billions reduced to "under a thousand"; for two
     parameters our composition stage tries at most a few dozen. *)
  let rows =
    List.concat_map
      (fun p ->
        List.map (fun n -> ([ ("p", p); ("n", n) ], [ p +. n ])) [ 1.; 2.; 4. ])
      [ 2.; 4.; 8. ]
  in
  let r = Model.Search.multi (Model.Dataset.of_rows [ "p"; "n" ] rows) in
  Alcotest.(check bool)
    (Printf.sprintf "composition stage is small (%d)" r.Model.Search.hypotheses_tried)
    true
    (r.Model.Search.hypotheses_tried < 1000)

let tests =
  [
    Seeded.to_alcotest prop_loop_taint_soundness;
    Seeded.to_alcotest prop_control_flow_monotone;
    Alcotest.test_case "single search space = 1432 hypotheses" `Quick
      test_single_search_space_size;
    Alcotest.test_case "multi search space stays under 1000" `Quick
      test_multi_search_space_small;
  ]
