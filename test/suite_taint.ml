(** Tests of the DFSan-style taint runtime: label algebra, union-tree
    deduplication, shadow memory. *)

module L = Taint.Label
module S = Taint.Shadow

let names tbl l = L.names tbl l

let test_empty_label () =
  let tbl = L.create () in
  Alcotest.(check bool) "empty is empty" true (L.is_empty L.empty);
  Alcotest.(check (list string)) "no names" [] (names tbl L.empty)

let test_base_interning () =
  let tbl = L.create () in
  let a1 = L.base tbl "a" in
  let a2 = L.base tbl "a" in
  Alcotest.(check bool) "same base interned" true (a1 = a2);
  Alcotest.(check (list string)) "name" [ "a" ] (names tbl a1)

let test_union_basics () =
  let tbl = L.create () in
  let a = L.base tbl "a" and b = L.base tbl "b" in
  let ab = L.union tbl a b in
  Alcotest.(check (list string)) "union names" [ "a"; "b" ] (names tbl ab);
  Alcotest.(check bool) "union with empty is identity" true
    (L.union tbl a L.empty = a);
  Alcotest.(check bool) "union with self is identity" true (L.union tbl a a = a)

let test_union_dedup () =
  let tbl = L.create () in
  let a = L.base tbl "a" and b = L.base tbl "b" in
  let ab1 = L.union tbl a b in
  let ab2 = L.union tbl b a in
  Alcotest.(check bool) "a|b and b|a share a node" true (ab1 = ab2);
  let before = L.label_count tbl in
  let _ = L.union tbl a b in
  Alcotest.(check int) "no new node for repeated union" before
    (L.label_count tbl)

let test_union_subsumption () =
  let tbl = L.create () in
  let a = L.base tbl "a" and b = L.base tbl "b" in
  let ab = L.union tbl a b in
  Alcotest.(check bool) "ab | a = ab" true (L.union tbl ab a = ab);
  Alcotest.(check bool) "a | ab = ab" true (L.union tbl a ab = ab)

let test_has () =
  let tbl = L.create () in
  let a = L.base tbl "a" and b = L.base tbl "b" in
  let ab = L.union tbl a b in
  Alcotest.(check bool) "has a" true (L.has tbl ab "a");
  Alcotest.(check bool) "has b" true (L.has tbl ab "b");
  Alcotest.(check bool) "not has c" false (L.has tbl ab "c")

let test_union_all () =
  let tbl = L.create () in
  let ls = List.map (L.base tbl) [ "x"; "y"; "z" ] in
  let u = L.union_all tbl ls in
  Alcotest.(check (list string)) "all three" [ "x"; "y"; "z" ] (names tbl u)

let test_growth () =
  (* Force the table to grow past its initial capacity. *)
  let tbl = L.create () in
  let bases = List.init 100 (fun i -> L.base tbl (Printf.sprintf "p%02d" i)) in
  let u = L.union_all tbl bases in
  Alcotest.(check int) "100 names" 100 (List.length (names tbl u))

(* -- shadow memory ------------------------------------------------------------ *)

let test_shadow_roundtrip () =
  let tbl = L.create () in
  let s = S.create () in
  S.on_alloc s ~alloc:0 ~size:8;
  let a = L.base tbl "a" in
  S.set s ~alloc:0 ~offset:3 a;
  Alcotest.(check bool) "read back" true (S.get s ~alloc:0 ~offset:3 = a);
  Alcotest.(check bool) "other cell clean" true
    (L.is_empty (S.get s ~alloc:0 ~offset:4))

let test_shadow_out_of_bounds () =
  let s = S.create () in
  S.on_alloc s ~alloc:0 ~size:4;
  Alcotest.(check bool) "oob get is empty" true
    (L.is_empty (S.get s ~alloc:0 ~offset:99));
  (* oob set is a no-op, not a crash *)
  let tbl = L.create () in
  S.set s ~alloc:0 ~offset:99 (L.base tbl "x");
  Alcotest.(check bool) "unknown alloc get is empty" true
    (L.is_empty (S.get s ~alloc:42 ~offset:0))

let test_shadow_taint_all_and_summary () =
  let tbl = L.create () in
  let s = S.create () in
  S.on_alloc s ~alloc:1 ~size:4;
  let a = L.base tbl "a" in
  S.taint_all s ~alloc:1 a;
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "cell %d tainted" i)
      true
      (S.get s ~alloc:1 ~offset:i = a)
  done;
  Alcotest.(check bool) "summary is a" true (S.summary tbl s ~alloc:1 = a)

(* -- properties ------------------------------------------------------------------ *)

let gen_param_names = QCheck.Gen.(list_size (int_range 1 6) (string_size ~gen:(char_range 'a' 'f') (return 1)))

let prop_union_commutative =
  QCheck.Test.make ~count:200 ~name:"union is commutative (as a name set)"
    (QCheck.make QCheck.Gen.(pair gen_param_names gen_param_names))
    (fun (xs, ys) ->
      let tbl = L.create () in
      let mk ns = L.union_all tbl (List.map (L.base tbl) ns) in
      let a = mk xs and b = mk ys in
      names tbl (L.union tbl a b) = names tbl (L.union tbl b a))

let prop_union_associative =
  QCheck.Test.make ~count:200 ~name:"union is associative (as a name set)"
    (QCheck.make QCheck.Gen.(triple gen_param_names gen_param_names gen_param_names))
    (fun (xs, ys, zs) ->
      let tbl = L.create () in
      let mk ns = L.union_all tbl (List.map (L.base tbl) ns) in
      let a = mk xs and b = mk ys and c = mk zs in
      names tbl (L.union tbl (L.union tbl a b) c)
      = names tbl (L.union tbl a (L.union tbl b c)))

let prop_union_idempotent =
  QCheck.Test.make ~count:200 ~name:"union is idempotent"
    (QCheck.make gen_param_names)
    (fun xs ->
      let tbl = L.create () in
      let a = L.union_all tbl (List.map (L.base tbl) xs) in
      L.union tbl a a = a)

let prop_names_sorted_unique =
  QCheck.Test.make ~count:200 ~name:"names are sorted and duplicate-free"
    (QCheck.make gen_param_names)
    (fun xs ->
      let tbl = L.create () in
      let a = L.union_all tbl (List.map (L.base tbl) xs) in
      let ns = names tbl a in
      ns = List.sort_uniq compare ns)

(* Sorted-pair interning means commutativity holds on the *handles*, not
   just on the expanded name sets: union a b and union b a return the
   same label, so no table space is wasted on mirrored pairs. *)
let prop_union_commutative_handles =
  QCheck.Test.make ~count:200 ~name:"union is commutative on handles"
    (QCheck.make QCheck.Gen.(pair gen_param_names gen_param_names))
    (fun (xs, ys) ->
      let tbl = L.create () in
      let mk ns = L.union_all tbl (List.map (L.base tbl) ns) in
      let a = mk xs and b = mk ys in
      L.union tbl a b = L.union tbl b a)

let prop_label_count_bounded =
  QCheck.Test.make ~count:100 ~name:"label count stays under 2^16"
    (QCheck.make QCheck.Gen.(list_size (int_bound 8) (pair gen_param_names gen_param_names)))
    (fun pairs ->
      let tbl = L.create () in
      List.iter
        (fun (xs, ys) ->
          let mk ns = L.union_all tbl (List.map (L.base tbl) ns) in
          ignore (L.union tbl (mk xs) (mk ys)))
        pairs;
      L.label_count tbl < L.max_labels)

let test_label_space_cap () =
  (* The DFSan encoding gives 16-bit identifiers: the 2^16th allocation
     must raise instead of silently wrapping. *)
  let tbl = L.create () in
  (try
     for i = 0 to L.max_labels do
       ignore (L.base tbl (Printf.sprintf "q%d" i))
     done;
     Alcotest.fail "expected Label_overflow"
   with L.Label_overflow -> ());
  Alcotest.(check bool) "count stayed under the cap" true
    (L.label_count tbl < L.max_labels)

let prop_union_matches_set_union =
  QCheck.Test.make ~count:200 ~name:"label union = set union of names"
    (QCheck.make QCheck.Gen.(pair gen_param_names gen_param_names))
    (fun (xs, ys) ->
      let tbl = L.create () in
      let mk ns = L.union_all tbl (List.map (L.base tbl) ns) in
      names tbl (L.union tbl (mk xs) (mk ys))
      = List.sort_uniq compare (xs @ ys))

let tests =
  [
    Alcotest.test_case "empty label" `Quick test_empty_label;
    Alcotest.test_case "base interning" `Quick test_base_interning;
    Alcotest.test_case "union basics" `Quick test_union_basics;
    Alcotest.test_case "union dedup (DFSan)" `Quick test_union_dedup;
    Alcotest.test_case "union subsumption fast path" `Quick
      test_union_subsumption;
    Alcotest.test_case "has" `Quick test_has;
    Alcotest.test_case "union_all" `Quick test_union_all;
    Alcotest.test_case "table growth" `Quick test_growth;
    Alcotest.test_case "shadow round trip" `Quick test_shadow_roundtrip;
    Alcotest.test_case "shadow out of bounds" `Quick test_shadow_out_of_bounds;
    Alcotest.test_case "shadow taint_all + summary" `Quick
      test_shadow_taint_all_and_summary;
    Alcotest.test_case "2^16 label-space cap" `Quick test_label_space_cap;
    Seeded.to_alcotest prop_union_commutative;
    Seeded.to_alcotest prop_union_commutative_handles;
    Seeded.to_alcotest prop_union_associative;
    Seeded.to_alcotest prop_union_idempotent;
    Seeded.to_alcotest prop_names_sorted_unique;
    Seeded.to_alcotest prop_union_matches_set_union;
    Seeded.to_alcotest prop_label_count_bounded;
  ]
