(** Tests of the compilation tier: the slot-resolved lowering pass
    ([Interp.Lower]) and the compiled engine ([Interp.Compiled]) against
    the tree-walking interpreter as differential oracle — slot-allocation
    edge cases (shadowed registers, empty blocks, recursion), the
    duplicate-label first-wins rule shared through [Interp.Fstatic], lazy
    trap-message identity, mid-block budget cuts, bit-identity on the
    bundled applications and [examples/heat.pir], parallel fuzz campaigns
    of the [compile-identity] oracle at several pool sizes, and the
    "Lowered IR" table of doc/IR.md staying in sync with
    {!Interp.Lower.lowered_ops}. *)

open Ir.Types
module B = Ir.Builder
module M = Interp.Machine
module O = Fuzz.Oracle

let prog funcs entry = { pname = "t"; funcs; entry }

let check_identity ?(config = O.interp_config) p =
  match O.check (O.compile_identity_with config) p with
  | O.Pass -> ()
  | O.Fail msg -> Alcotest.failf "tier divergence: %s" msg

(* Run one program through both Taint tiers and return what each did:
   either the result value or the trap, plus the step count. *)
let both_tiers ?(config = M.default_config) p args =
  let run_via (type a) (module E : Interp.Engine.S with type t = a) =
    let m = E.create ~config p in
    let outcome =
      match E.run m args with
      | v, _ -> Ok v
      | exception M.Budget_exceeded n -> Error (Printf.sprintf "budget %d" n)
      | exception M.Runtime_error msg -> Error ("runtime error: " ^ msg)
      | exception Ir_error msg -> Error ("invalid IR: " ^ msg)
    in
    (outcome, E.steps_executed m)
  in
  ( run_via (module M),
    run_via (module Interp.Compiled.Taint) )

let check_both ?config ~what p args =
  let i, c = both_tiers ?config p args in
  Alcotest.(check bool)
    (Printf.sprintf "%s: compiled = interpreted (%s)" what
       (match fst i with Ok _ -> "value" | Error e -> e))
    true (i = c);
  i

(* -- duplicate labels: the shared first-wins rule ---------------------------- *)

(* Two blocks named "dup": the first returns 1, the second 2.  Both
   tiers must resolve the jump to the first — the single definition in
   [Interp.Fstatic] — and the lowering must drop the dead duplicate. *)
let test_duplicate_label_first_wins () =
  let p =
    prog
      [
        {
          fname = "f";
          fparams = [];
          blocks =
            [
              { label = "entry"; instrs = []; term = Jump "dup" };
              { label = "dup"; instrs = []; term = Return (Int 1) };
              { label = "dup"; instrs = []; term = Return (Int 2) };
            ];
        };
      ]
      "f"
  in
  let i = check_both ~what:"duplicate label" p [] in
  Alcotest.(check bool) "first definition wins" true (fst i = Ok (VInt 1));
  check_identity p

(* Duplicate function names follow the same rule: find_func is
   first-wins, and the compiled function table must agree. *)
let test_duplicate_function_first_wins () =
  let fn ret =
    {
      fname = "g";
      fparams = [];
      blocks = [ { label = "entry"; instrs = []; term = Return (Int ret) } ];
    }
  in
  let main =
    {
      fname = "f";
      fparams = [];
      blocks =
        [
          {
            label = "entry";
            instrs = [ Call (Some "r", "g", []) ];
            term = Return (Reg "r");
          };
        ];
    }
  in
  let p = prog [ main; fn 1; fn 2 ] "f" in
  let i = check_both ~what:"duplicate function" p [] in
  Alcotest.(check bool) "first definition wins" true (fst i = Ok (VInt 1));
  check_identity p

(* -- slot allocation --------------------------------------------------------- *)

(* A parameter reused as a scratch register and a register written in
   several blocks must each map to one slot: parameters first, then
   first-occurrence order. *)
let test_shadowed_registers () =
  let f =
    B.define "f" ~params:[ "n" ] (fun b ->
        B.set b "n" (B.add b (Reg "n") (Int 1));
        B.set b "x" (Int 10);
        B.set b "x" (B.add b (Reg "x") (Reg "n"));
        B.ret b (Reg "x"))
  in
  let p = prog [ f ] "f" in
  let lowered =
    Interp.Lower.func
      ~resolve:(fun _ -> None)
      f
      (Interp.Fstatic.of_func f)
  in
  (* n, x plus one builder temporary per arithmetic op. *)
  Alcotest.(check int) "parameter occupies slot 0" 0
    (match Array.to_list lowered.Interp.Lower.lsnames with
    | "n" :: _ -> 0
    | other -> Alcotest.failf "slot 0 is %s" (String.concat "," other));
  Alcotest.(check int) "each register gets exactly one slot"
    (List.length
       (List.sort_uniq compare (Array.to_list lowered.Interp.Lower.lsnames)))
    lowered.Interp.Lower.lnslots;
  let i = check_both ~what:"shadowed registers" p [ VInt 3 ] in
  Alcotest.(check bool) "value" true (fst i = Ok (VInt 14));
  check_identity p

(* Empty blocks (terminator only) and an empty function body. *)
let test_empty_blocks () =
  let p =
    prog
      [
        {
          fname = "f";
          fparams = [];
          blocks =
            [
              { label = "entry"; instrs = []; term = Jump "a" };
              { label = "a"; instrs = []; term = Jump "b" };
              { label = "b"; instrs = []; term = Return (Int 7) };
            ];
        };
      ]
      "f"
  in
  let i = check_both ~what:"empty blocks" p [] in
  Alcotest.(check bool) "value" true (fst i = Ok (VInt 7));
  Alcotest.(check int) "one step per terminator" 3 (snd i);
  check_identity p;
  (* A call to a block-less function traps identically on both tiers,
     after the call itself was counted. *)
  let hollow = { fname = "hollow"; fparams = []; blocks = [] } in
  let main =
    {
      fname = "f";
      fparams = [];
      blocks =
        [
          {
            label = "entry";
            instrs = [ Call (None, "hollow", []) ];
            term = Return Unit;
          };
        ];
    }
  in
  let p = prog [ main; hollow ] "f" in
  let i = check_both ~what:"empty function" p [] in
  Alcotest.(check bool) "trap text" true
    (fst i = Error "invalid IR: function hollow has no blocks")

(* -- recursion --------------------------------------------------------------- *)

let test_recursive_calls () =
  (* Self-recursion: fib(n). *)
  let fib =
    B.define "fib" ~params:[ "n" ] (fun b ->
        let c = B.gt b (Reg "n") (Int 1) in
        B.terminate b (Branch (c, "rec", "base"));
        B.start_block b "rec";
        let a = B.call b "fib" [ B.sub b (Reg "n") (Int 1) ] in
        let d = B.call b "fib" [ B.sub b (Reg "n") (Int 2) ] in
        B.ret b (B.add b a d);
        B.start_block b "base";
        B.ret b (Reg "n"))
  in
  let p = prog [ fib ] "fib" in
  let i = check_both ~what:"self-recursion" p [ VInt 12 ] in
  Alcotest.(check bool) "fib 12" true (fst i = Ok (VInt 144));
  check_identity p;
  (* Mutual recursion: is_even/is_odd. *)
  let even =
    B.define "even" ~params:[ "n" ] (fun b ->
        let c = B.gt b (Reg "n") (Int 0) in
        B.terminate b (Branch (c, "rec", "base"));
        B.start_block b "rec";
        let r = B.call b "odd" [ B.sub b (Reg "n") (Int 1) ] in
        B.ret b r;
        B.start_block b "base";
        B.ret b (Int 1))
  in
  let odd =
    B.define "odd" ~params:[ "n" ] (fun b ->
        let c = B.gt b (Reg "n") (Int 0) in
        B.terminate b (Branch (c, "rec", "base"));
        B.start_block b "rec";
        let r = B.call b "even" [ B.sub b (Reg "n") (Int 1) ] in
        B.ret b r;
        B.start_block b "base";
        B.ret b (Int 0))
  in
  let p = prog [ even; odd ] "even" in
  let i = check_both ~what:"mutual recursion" p [ VInt 9 ] in
  Alcotest.(check bool) "even 9 = false" true (fst i = Ok (VInt 0));
  check_identity p;
  (* Unbounded recursion trips the shared depth limit, same text. *)
  let forever =
    B.define "f" ~params:[] (fun b ->
        let r = B.call b "f" [] in
        B.ret b r)
  in
  let i = check_both ~what:"call depth" (prog [ forever ] "f") [] in
  Alcotest.(check bool) "depth trap text" true
    (fst i = Error "runtime error: call depth exceeded")

(* -- the budget cutting mid-block -------------------------------------------- *)

let test_budget_cut_mid_block () =
  (* One straight-line block of many instructions: any budget below the
     block length stops inside it, and the exception must carry exactly
     the budget on both tiers. *)
  let f =
    B.define "f" ~params:[] (fun b ->
        B.set b "x" (Int 0);
        for _ = 1 to 50 do
          B.set b "x" (B.add b (Reg "x") (Int 1))
        done;
        B.ret b (Reg "x"))
  in
  let p = prog [ f ] "f" in
  List.iter
    (fun budget ->
      let config = { M.default_config with max_steps = budget } in
      let i = check_both ~config ~what:"mid-block budget" p [] in
      Alcotest.(check bool)
        (Printf.sprintf "Budget_exceeded carries exactly %d" budget)
        true
        (fst i = Error (Printf.sprintf "budget %d" budget));
      check_identity ~config:{ O.interp_config with max_steps = budget } p)
    [ 1; 7; 33 ]

(* -- lazy trap identity ------------------------------------------------------- *)

let test_trap_messages_identical () =
  let cases =
    [
      ( "unknown callee",
        "{ call @nope() } traps only when executed",
        [
          {
            fname = "f";
            fparams = [];
            blocks =
              [
                {
                  label = "entry";
                  instrs = [ Call (None, "nope", []) ];
                  term = Return Unit;
                };
              ];
          };
        ],
        Error "invalid IR: unknown function nope" );
      ( "arity mismatch",
        "wrong argument count",
        [
          {
            fname = "f";
            fparams = [];
            blocks =
              [
                {
                  label = "entry";
                  instrs = [ Call (None, "g", [ Int 1 ]) ];
                  term = Return Unit;
                };
              ];
          };
          {
            fname = "g";
            fparams = [ "a"; "b" ];
            blocks = [ { label = "entry"; instrs = []; term = Return Unit } ];
          };
        ],
        Error "runtime error: arity mismatch calling g: 2 formals, 1 actuals"
      );
      ( "unknown block",
        "dangling jump",
        [
          {
            fname = "f";
            fparams = [];
            blocks = [ { label = "entry"; instrs = []; term = Jump "gone" } ];
          };
        ],
        Error "invalid IR: unknown block gone in f" );
      ( "unknown prim",
        "unregistered primitive",
        [
          {
            fname = "f";
            fparams = [];
            blocks =
              [
                {
                  label = "entry";
                  instrs = [ Prim (Some "x", "frob", []) ];
                  term = Return (Reg "x");
                };
              ];
          };
        ],
        Error "runtime error: unknown primitive !frob" );
      ( "unset register",
        "read before any write",
        [
          {
            fname = "f";
            fparams = [];
            blocks =
              [
                {
                  label = "entry";
                  instrs = [ Assign ("y", Reg "x") ];
                  term = Return (Reg "y");
                };
              ];
          };
        ],
        Error "runtime error: read of unset register %x in f" );
    ]
  in
  List.iter
    (fun (what, _why, funcs, expect) ->
      let i = check_both ~what (prog funcs "f") [] in
      Alcotest.(check bool)
        (Printf.sprintf "%s: exact interpreter text" what)
        true (fst i = expect))
    cases;
  (* A lazy trap on a dead path must NOT fire: the same unknown callee
     behind an untaken branch runs to completion on both tiers. *)
  let p =
    prog
      [
        {
          fname = "f";
          fparams = [];
          blocks =
            [
              { label = "entry"; instrs = []; term = Branch (Bool true, "ok", "bad") };
              { label = "ok"; instrs = []; term = Return (Int 5) };
              {
                label = "bad";
                instrs = [ Call (None, "nope", []) ];
                term = Jump "gone";
              };
            ];
        };
      ]
      "f"
  in
  let i = check_both ~what:"dead trap" p [] in
  Alcotest.(check bool) "dead traps stay dormant" true (fst i = Ok (VInt 5))

(* -- bit-identity on the bundled programs ------------------------------------- *)

let test_identity_on_apps () =
  List.iter check_identity
    [
      Apps.Didactic.iterate_example;
      Apps.Didactic.foo_example;
      Apps.Didactic.matrix_init;
      Apps.Didactic.algorithm_selection;
    ]

(* The checked-in example program, through the full pipeline on both
   tiers: identical classification inputs (observations digested into
   deps) and identical step counts. *)
let test_identity_on_heat_example () =
  let path =
    List.find Sys.file_exists [ "../examples/heat.pir"; "examples/heat.pir" ]
  in
  let p = Ir.Parser.parse_file path in
  check_identity p;
  let analyze engine = Perf_taint.Pipeline.analyze ~engine p ~args:[ VInt 8; VInt 4 ] in
  let i = analyze Interp.Engine.Interpreted in
  let c = analyze Interp.Engine.Compiled in
  Alcotest.(check int) "same steps" i.Perf_taint.Pipeline.steps
    c.Perf_taint.Pipeline.steps;
  Alcotest.(check bool) "same dependency digests" true
    (Perf_taint.Pipeline.SMap.equal ( = ) i.Perf_taint.Pipeline.deps
       c.Perf_taint.Pipeline.deps)

(* Replays through Measure.Simulator agree between tiers on the bundled
   app with an MPI world (mpi_comm_size taint source installed). *)
let test_replay_engines_agree () =
  let grid = [ ("p", [ 2.; 4. ]); ("size", [ 6.; 10. ]) ] in
  let rs e =
    Measure.Experiment.replay_runs ~engine:e Apps.Didactic.iterate_example
      ~grid:[ ("size", [ 4.; 8. ]); ("step", [ 1.; 2. ]) ]
  in
  Alcotest.(check bool) "replay_runs identical" true
    (rs Interp.Engine.Interpreted = rs Interp.Engine.Compiled);
  ignore grid

(* -- parallel campaigns -------------------------------------------------------
   The compile-identity oracle through the fuzz driver at several pool
   sizes: same verdicts, same case counts, no counterexamples. *)

let campaign pool =
  Fuzz.Driver.run_campaign ?pool ~oracles:[ O.compile_identity ] ~seed:1234
    ~budget:60 ()

let test_fuzz_campaign_jobs () =
  let serial = campaign None in
  List.iter
    (fun (r : Fuzz.Driver.oracle_result) ->
      Alcotest.(check int) "all 60 cases checked" 60 r.or_runs;
      Alcotest.(check bool) "no counterexample" true (r.or_cx = None))
    serial.rp_results;
  List.iter
    (fun jobs ->
      Par.Pool.with_pool ~jobs (fun p ->
          let par = campaign (Some p) in
          Alcotest.(check bool)
            (Printf.sprintf "report at --jobs %d identical to serial" jobs)
            true
            (par = serial)))
    [ 2; 7 ]

(* -- documentation drift ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* [Interp.Lower.lowered_ops] is the single definition of the lowered
   instruction layout; the "Lowered IR" table in doc/IR.md must list
   every row verbatim. *)
let test_lowered_ops_doc_in_sync () =
  let path = List.find Sys.file_exists [ "../doc/IR.md"; "doc/IR.md" ] in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "doc/IR.md lists %s with its meaning" name)
        true (contains doc row))
    Interp.Lower.lowered_ops

(* -- the domain-local lowering cache ------------------------------------------
   PR 7 memoizes lowered functions per domain; the cache's hit/miss
   traffic is now observable.  The counters live outside the engines (a
   domain-local tally, surfaced by the pipeline as a per-analysis delta)
   precisely so the compile-identity oracle's registry comparison stays
   bit-identical across tiers. *)

let test_lower_cache_counters_move () =
  let p =
    prog [ B.define "main" ~params:[ "n" ] (fun b -> B.ret b (Reg "n")) ] "main"
  in
  let run () =
    let m = Interp.Compiled.Taint.create ~config:M.default_config p in
    ignore (Interp.Compiled.Taint.run m [ VInt 3 ])
  in
  let _, m0 = Interp.Compiled.cache_stats () in
  run ();
  let h1, m1 = Interp.Compiled.cache_stats () in
  Alcotest.(check bool) "first engine lowers afresh" true (m1 > m0);
  run ();
  let h2, m2 = Interp.Compiled.cache_stats () in
  Alcotest.(check bool) "second engine hits the cache" true (h2 > h1);
  Alcotest.(check int) "nothing re-lowered" m1 m2

let test_pipeline_surfaces_cache_counters () =
  let counter reg name =
    Option.value ~default:0
      (Obs_metrics.find_counter reg.Perf_taint.Pipeline.snapshot name)
  in
  let analyze () =
    Perf_taint.Pipeline.analyze ~engine:Interp.Engine.Compiled
      Apps.Didactic.iterate_example ~args:[ VInt 10; VInt 2 ]
  in
  let first = analyze () in
  let again = analyze () in
  Alcotest.(check bool) "a repeated analysis reports cache hits" true
    (counter again "compile.cache_hit" > 0);
  Alcotest.(check int) "and re-lowers nothing" 0
    (counter again "compile.cache_miss");
  (* the interpreted tier reports the vocabulary too, at zero *)
  let interp =
    Perf_taint.Pipeline.analyze ~engine:Interp.Engine.Interpreted
      Apps.Didactic.iterate_example ~args:[ VInt 10; VInt 2 ]
  in
  Alcotest.(check int) "interp tier: zero hits" 0
    (counter interp "compile.cache_hit");
  ignore first

let test_cache_counter_doc_in_sync () =
  let path =
    List.find Sys.file_exists
      [ "../doc/OBSERVABILITY.md"; "doc/OBSERVABILITY.md" ]
  in
  let doc = read_file path in
  List.iter
    (fun (name, descr) ->
      let row = Printf.sprintf "| `%s` | %s |" name descr in
      Alcotest.(check bool)
        (Printf.sprintf "doc/OBSERVABILITY.md lists %s with its meaning" name)
        true (contains doc row))
    Interp.Compiled.cache_counters

let test_design_doc_mentions_tier () =
  let path = List.find Sys.file_exists [ "../DESIGN.md"; "DESIGN.md" ] in
  let doc = read_file path in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "DESIGN.md mentions %s" needle)
        true (contains doc needle))
    [ "lower.ml"; "compiled.ml"; "compile-identity" ]

let tests =
  [
    Alcotest.test_case "duplicate block labels: first wins on both tiers"
      `Quick test_duplicate_label_first_wins;
    Alcotest.test_case "duplicate function names: first wins on both tiers"
      `Quick test_duplicate_function_first_wins;
    Alcotest.test_case "shadowed registers share one slot" `Quick
      test_shadowed_registers;
    Alcotest.test_case "empty blocks and block-less functions" `Quick
      test_empty_blocks;
    Alcotest.test_case "self- and mutual recursion" `Quick
      test_recursive_calls;
    Alcotest.test_case "budget cuts mid-block with the exact count" `Quick
      test_budget_cut_mid_block;
    Alcotest.test_case "lazy traps carry the interpreter's texts" `Quick
      test_trap_messages_identical;
    Alcotest.test_case "bit-identity on the bundled apps" `Quick
      test_identity_on_apps;
    Alcotest.test_case "bit-identity on examples/heat.pir" `Quick
      test_identity_on_heat_example;
    Alcotest.test_case "replay_runs identical across engines" `Quick
      test_replay_engines_agree;
    Alcotest.test_case "compile-identity fuzz at --jobs 1/2/7" `Quick
      test_fuzz_campaign_jobs;
    Alcotest.test_case "lowered-op table in sync with doc/IR.md" `Quick
      test_lowered_ops_doc_in_sync;
    Alcotest.test_case "lowering cache counters move" `Quick
      test_lower_cache_counters_move;
    Alcotest.test_case "pipeline surfaces the cache delta" `Quick
      test_pipeline_surfaces_cache_counters;
    Alcotest.test_case "compile cache counter table in sync with doc" `Quick
      test_cache_counter_doc_in_sync;
    Alcotest.test_case "DESIGN.md names the compilation tier" `Quick
      test_design_doc_mentions_tier;
  ]
