(** Tests of the measurement substrate: machine model, noise determinism,
    instrumentation modes, the run simulator, and experiment designs. *)

module Sim = Measure.Simulator
module Noise_alias = Measure.Noise
module Instr = Measure.Instrument
module Exp = Measure.Experiment
module Spec = Measure.Spec
module Machine = Mpi_sim.Machine

let machine = Machine.skylake_cluster

let tiny_app =
  let kernel name ~tiny calls per_call =
    Spec.kernel ~kind:Spec.Compute ~tiny
      ~calls:(fun _ -> calls)
      ~base_time:(fun ps _ ->
        calls *. per_call *. Spec.param ps "n")
      ~truth_deps:[ "n" ] name
  in
  {
    Spec.aname = "tiny";
    kernels = [ kernel "hot" ~tiny:false 10. 1e-4; kernel "helper" ~tiny:true 1e6 1e-9 ];
    model_params = [ "n" ];
  }

let params = [ ("n", 8.); ("p", 4.) ]

(* -- machine model ----------------------------------------------------------- *)

let test_contention_monotone () =
  let prev = ref 0. in
  List.iter
    (fun r ->
      let s = Machine.contention_slowdown machine ~ranks_per_node:r in
      Alcotest.(check bool)
        (Printf.sprintf "slowdown at r=%d >= previous" r)
        true (s >= !prev);
      prev := s)
    [ 1; 2; 4; 8; 12; 16; 18 ]

let test_contention_unit_at_one () =
  Alcotest.(check (float 1e-9)) "no contention alone" 1.
    (Machine.contention_slowdown machine ~ranks_per_node:1)

let test_cores_per_node () =
  Alcotest.(check int) "36 cores" 36 (Machine.cores_per_node machine)

(* -- noise ---------------------------------------------------------------------- *)

let test_noise_deterministic () =
  let sample () =
    let rng = Noise_alias.create ~seed:1 ~salt:("a", 2) in
    Noise_alias.perturb rng ~sigma:0.05 1.0
  in
  Alcotest.(check (float 1e-12)) "same seed, same draw" (sample ()) (sample ())

let test_noise_salt_differs () =
  let s1 =
    Noise_alias.perturb (Noise_alias.create ~seed:1 ~salt:"a") ~sigma:0.05 1.0
  in
  let s2 =
    Noise_alias.perturb (Noise_alias.create ~seed:1 ~salt:"b") ~sigma:0.05 1.0
  in
  Alcotest.(check bool) "different salt, different draw" true (s1 <> s2)

let test_noise_nonnegative () =
  let rng = Noise_alias.create ~seed:3 ~salt:() in
  for _ = 1 to 1000 do
    let v = Noise_alias.perturb rng ~sigma:0.5 1e-9 in
    if v < 0. then Alcotest.fail "negative time"
  done

(* -- instrumentation modes -------------------------------------------------------- *)

let kernel_named name = Spec.find_kernel tiny_app name

let test_modes () =
  let hot = kernel_named "hot" and helper = kernel_named "helper" in
  Alcotest.(check bool) "full instruments helper" true
    (Instr.instrumented Instr.Full helper);
  Alcotest.(check bool) "default skips tiny helper" false
    (Instr.instrumented Instr.Default helper);
  Alcotest.(check bool) "default keeps hot" true
    (Instr.instrumented Instr.Default hot);
  Alcotest.(check bool) "uninstrumented observes nothing" false
    (Instr.observed Instr.Uninstrumented hot);
  let sel = Instr.Selective (Instr.SSet.singleton "hot") in
  Alcotest.(check bool) "selective keeps chosen" true (Instr.instrumented sel hot);
  Alcotest.(check bool) "selective drops others" false
    (Instr.instrumented sel helper)

(* -- simulator ----------------------------------------------------------------------- *)

let test_full_costs_more () =
  let t mode = (Sim.measure tiny_app machine ~params ~mode).Sim.rn_total in
  Alcotest.(check bool) "full > uninstrumented" true
    (t Instr.Full > t Instr.Uninstrumented);
  Alcotest.(check bool) "default ~ cheap" true
    (t Instr.Default < t Instr.Full)

let test_per_call_metric () =
  let run = Sim.measure ~sigma:0. tiny_app machine ~params ~mode:Instr.Full in
  match Sim.kernel_measurement run "hot" with
  | Some km ->
    Alcotest.(check (float 1e-9)) "calls" 10. km.Sim.km_calls;
    (* per-call = 1e-4 * n = 8e-4, plus the additive jitter floor *)
    Alcotest.(check bool) "per-call near truth" true
      (Float.abs (km.Sim.km_per_call -. 8e-4) < 5e-5);
    Alcotest.(check (float 1e-9)) "total = per-call * calls"
      (km.Sim.km_per_call *. 10.) km.Sim.km_total
  | None -> Alcotest.fail "hot kernel must be observed"

let test_unobserved_absent () =
  let sel = Instr.Selective (Instr.SSet.singleton "hot") in
  let run = Sim.measure tiny_app machine ~params ~mode:sel in
  Alcotest.(check bool) "helper invisible" true
    (Sim.kernel_time run "helper" = None)

let test_overhead_sign () =
  let run = Sim.measure tiny_app machine ~params ~mode:Instr.Full in
  Alcotest.(check bool) "full overhead strictly positive" true
    (Sim.overhead run > 0.1)

let test_reproducible_runs () =
  let r1 = Sim.measure ~seed:9 tiny_app machine ~params ~mode:Instr.Full in
  let r2 = Sim.measure ~seed:9 tiny_app machine ~params ~mode:Instr.Full in
  Alcotest.(check (float 0.)) "identical totals" r1.Sim.rn_total r2.Sim.rn_total

(* -- experiments ------------------------------------------------------------------------ *)

let design mode =
  { Exp.grid = [ ("n", [ 2.; 4. ]); ("p", [ 1.; 2.; 3. ]) ];
    reps = 2; mode; sigma = 0.01; seed = 1 }

let test_configs_cartesian () =
  let cs = Exp.configs (design Instr.Full) in
  Alcotest.(check int) "2 x 3 configurations" 6 (List.length cs);
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq compare cs) = 6)

let test_run_design_count () =
  let runs = Exp.run_design tiny_app machine (design Instr.Full) in
  Alcotest.(check int) "configs x reps" 12 (Exp.run_count runs)

let test_kernel_dataset_shape () =
  let runs = Exp.run_design tiny_app machine (design Instr.Full) in
  let data = Exp.kernel_dataset runs ~params:[ "n" ] ~kernel:"hot" in
  (* Keyed by n only: 2 points, each with 3 (p) x 2 (reps) = 6 reps. *)
  Alcotest.(check int) "two points" 2 (List.length data.Model.Dataset.points);
  List.iter
    (fun (pt : Model.Dataset.point) ->
      Alcotest.(check int) "six reps" 6 (List.length pt.Model.Dataset.reps))
    data.Model.Dataset.points

let test_total_dataset () =
  let runs = Exp.run_design tiny_app machine (design Instr.Uninstrumented) in
  let data = Exp.total_dataset runs ~params:[ "n"; "p" ] in
  Alcotest.(check int) "six points" 6 (List.length data.Model.Dataset.points)

let test_core_hours () =
  (* One run at p=2 lasting rn_total seconds costs 2*rn_total/3600 h. *)
  let runs =
    [ Sim.measure tiny_app machine ~params:[ ("n", 1.); ("p", 2.) ]
        ~mode:Instr.Uninstrumented ]
  in
  let expected =
    (List.hd runs).Sim.rn_total *. 2. /. 3600.
  in
  Alcotest.(check (float 1e-12)) "core hours" expected (Exp.core_hours runs)

let test_ranks_per_node_override () =
  Alcotest.(check int) "explicit r honored" 4
    (Sim.ranks_per_node_of machine [ ("p", 64.); ("r", 4.) ]);
  Alcotest.(check int) "default fills cores" 36
    (Sim.ranks_per_node_of machine [ ("p", 64.) ]);
  Alcotest.(check int) "small p fits" 8
    (Sim.ranks_per_node_of machine [ ("p", 8.) ])

let test_default_design () =
  let d = Exp.default_design in
  Alcotest.(check int) "empty grid has one (empty) config" 1
    (List.length (Exp.configs d))

(* -- MPI cost database ----------------------------------------------------------- *)

let test_costdb_coverage () =
  (* Every routine the apps use must be in the database. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in database") true
        (Mpi_sim.Costdb.find name <> None))
    [ "mpi_comm_size"; "mpi_comm_rank"; "mpi_send"; "mpi_recv"; "mpi_isend";
      "mpi_irecv"; "mpi_wait"; "mpi_barrier"; "mpi_bcast"; "mpi_reduce";
      "mpi_allreduce"; "mpi_allgather" ]

let test_costdb_predicates () =
  Alcotest.(check bool) "mpi_allreduce is relevant" true
    (Mpi_sim.Costdb.relevant_prim "mpi_allreduce");
  Alcotest.(check bool) "mpi_comm_size is relevant (taint source)" true
    (Mpi_sim.Costdb.relevant_prim "mpi_comm_size");
  Alcotest.(check bool) "mpi_comm_rank is not relevant" false
    (Mpi_sim.Costdb.relevant_prim "mpi_comm_rank");
  Alcotest.(check bool) "work is not an MPI prim" false
    (Mpi_sim.Costdb.is_mpi_prim "work");
  Alcotest.(check bool) "mpi_wait is an MPI prim" true
    (Mpi_sim.Costdb.is_mpi_prim "mpi_wait")

let test_costdb_costs_monotone_in_p () =
  (* Collectives must not get cheaper with more ranks. *)
  List.iter
    (fun name ->
      match Mpi_sim.Costdb.find name with
      | Some r when r.Mpi_sim.Costdb.collective ->
        let c p = r.Mpi_sim.Costdb.cost ~p ~count:1024 machine in
        Alcotest.(check bool) (name ^ " monotone in p") true
          (c 4 <= c 16 && c 16 <= c 256)
      | _ -> ())
    Mpi_sim.Costdb.routine_names

let test_costdb_costs_monotone_in_count () =
  List.iter
    (fun name ->
      match Mpi_sim.Costdb.find name with
      | Some r when r.Mpi_sim.Costdb.count_arg <> None ->
        let c count = r.Mpi_sim.Costdb.cost ~p:16 ~count machine in
        Alcotest.(check bool) (name ^ " monotone in count") true
          (c 1 <= c 1024 && c 1024 <= c 65536)
      | _ -> ())
    Mpi_sim.Costdb.routine_names

let test_costdb_costs_positive () =
  List.iter
    (fun (r : Mpi_sim.Costdb.routine) ->
      Alcotest.(check bool) (r.name ^ " positive") true
        (r.cost ~p:8 ~count:64 machine > 0.))
    Mpi_sim.Costdb.routines

(* -- clean program replay (Plain-policy engine) ----------------------------- *)

let test_replay_matches_tainted_run () =
  let p = Apps.Didactic.iterate_example in
  let r = Sim.replay p ~params:[ ("size", 10.); ("step", 2.) ] in
  let m = Interp.Machine.create p in
  let v, _ = Interp.Machine.run m [ Ir.Types.VInt 10; Ir.Types.VInt 2 ] in
  Alcotest.(check bool) "same result value" true (r.Sim.rp_value = v);
  Alcotest.(check int) "same step count" (Interp.Machine.steps_executed m)
    r.Sim.rp_steps;
  (* iterate(10^2, optimize_step 2) calls compute 50 times at 8 units. *)
  Alcotest.(check int) "compute invocations" 50
    (List.assoc "compute" r.Sim.rp_calls);
  Alcotest.(check int) "compute work units" 400 (Sim.replay_work r "compute");
  Alcotest.(check int) "no work outside compute" 0 (Sim.replay_work r "main")

let test_replay_missing_param () =
  try
    ignore (Sim.replay Apps.Didactic.iterate_example ~params:[ ("size", 10.) ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_replay_runs_grid () =
  let grid = [ ("size", [ 4.; 8. ]); ("step", [ 2. ]) ] in
  let rs = Exp.replay_runs Apps.Didactic.iterate_example ~grid in
  Alcotest.(check int) "one replay per configuration" 2 (List.length rs);
  let steps_at size =
    let r =
      List.find (fun r -> List.assoc "size" r.Sim.rp_params = size) rs
    in
    r.Sim.rp_steps
  in
  Alcotest.(check bool) "larger size executes more instructions" true
    (steps_at 8. > steps_at 4.)

(* -- sparse datasets --------------------------------------------------------------- *)

(* [kernel_dataset] skips runs where the kernel was not observed — the
   false-negative effect of a filter — while [total_dataset] keeps every
   run (totals are always measured).  Pinned here because the robust
   campaign fit depends on exactly this skipping behaviour. *)

let test_kernel_dataset_skips_unobserved () =
  let sel = design (Instr.Selective (Instr.SSet.singleton "hot")) in
  let runs = Exp.run_design tiny_app machine sel in
  let helper = Exp.kernel_dataset runs ~params:[ "n" ] ~kernel:"helper" in
  Alcotest.(check int) "unobserved kernel yields no points" 0
    (List.length helper.Model.Dataset.points);
  let hot = Exp.kernel_dataset runs ~params:[ "n" ] ~kernel:"hot" in
  Alcotest.(check int) "observed kernel keeps its grid" 2
    (List.length hot.Model.Dataset.points)

let test_kernel_dataset_mixed_modes () =
  (* Half the runs are uninstrumented: the kernel dataset must contain
     only the observed half, with correspondingly fewer reps. *)
  let full = Exp.run_design tiny_app machine (design Instr.Full) in
  let blind = Exp.run_design tiny_app machine (design Instr.Uninstrumented) in
  let data = Exp.kernel_dataset (full @ blind) ~params:[ "n" ] ~kernel:"hot" in
  Alcotest.(check int) "points from observed runs only" 2
    (List.length data.Model.Dataset.points);
  List.iter
    (fun (pt : Model.Dataset.point) ->
      Alcotest.(check int) "blind runs contribute no reps" 6
        (List.length pt.Model.Dataset.reps))
    data.Model.Dataset.points

let test_total_dataset_keeps_all_runs () =
  let full = Exp.run_design tiny_app machine (design Instr.Full) in
  let blind = Exp.run_design tiny_app machine (design Instr.Uninstrumented) in
  let data = Exp.total_dataset (full @ blind) ~params:[ "n" ] in
  Alcotest.(check int) "two points" 2 (List.length data.Model.Dataset.points);
  List.iter
    (fun (pt : Model.Dataset.point) ->
      Alcotest.(check int) "totals from every run" 12
        (List.length pt.Model.Dataset.reps))
    data.Model.Dataset.points

(* -- properties ----------------------------------------------------------------------------- *)

let prop_noise_stream_reproducible =
  QCheck.Test.make ~count:100 ~name:"same seed and salt, identical stream"
    QCheck.(triple small_int string (int_range 1 50))
    (fun (seed, salt, n) ->
      let draws () =
        let rng = Noise_alias.create ~seed ~salt in
        List.init n (fun _ -> Noise_alias.perturb rng ~sigma:0.1 1.0)
      in
      draws () = draws ())

let prop_noise_never_negative =
  QCheck.Test.make ~count:500 ~name:"perturb never negative at extreme sigma"
    QCheck.(triple small_int (float_bound_exclusive 10.) pos_float)
    (fun (seed, sigma, x) ->
      Noise_alias.perturb (Noise_alias.create ~seed ~salt:"neg") ~sigma x >= 0.)

let prop_noise_floor_dominates_near_zero =
  QCheck.Test.make ~count:200 ~name:"floor dominates a zero-length duration"
    QCheck.(pair small_int (float_bound_exclusive 1e-3))
    (fun (seed, floor) ->
      QCheck.assume (floor > 0.);
      (* At x = 0 the multiplicative term vanishes, so the draw is the
         additive floor term alone: doubling the floor doubles it. *)
      let draw f =
        Noise_alias.perturb ~floor:f
          (Noise_alias.create ~seed ~salt:"floor")
          ~sigma:0.5 0.
      in
      let d1 = draw floor in
      d1 >= 0. && Float.abs (draw (2. *. floor) -. (2. *. d1)) <= 1e-15)

let prop_selective_cheaper_than_full =
  QCheck.Test.make ~count:50 ~name:"selective never costs more than full"
    QCheck.(pair (int_range 1 64) (int_range 1 32))
    (fun (n, p) ->
      let params = [ ("n", float_of_int n); ("p", float_of_int p) ] in
      let t mode = (Sim.measure ~sigma:0. tiny_app machine ~params ~mode).Sim.rn_total in
      t (Instr.Selective (Instr.SSet.singleton "hot")) <= t Instr.Full +. 1e-12)

let prop_base_total_mode_independent =
  QCheck.Test.make ~count:50 ~name:"uninstrumented baseline independent of mode"
    QCheck.(int_range 1 64)
    (fun n ->
      let params = [ ("n", float_of_int n); ("p", 2.) ] in
      let b mode = (Sim.measure tiny_app machine ~params ~mode).Sim.rn_base_total in
      b Instr.Full = b Instr.Uninstrumented && b Instr.Default = b Instr.Full)

let tests =
  [
    Alcotest.test_case "contention is monotone" `Quick test_contention_monotone;
    Alcotest.test_case "no contention for one rank" `Quick
      test_contention_unit_at_one;
    Alcotest.test_case "cores per node" `Quick test_cores_per_node;
    Alcotest.test_case "noise is deterministic" `Quick test_noise_deterministic;
    Alcotest.test_case "noise differs across salts" `Quick
      test_noise_salt_differs;
    Alcotest.test_case "noise never negative" `Quick test_noise_nonnegative;
    Alcotest.test_case "instrumentation modes" `Quick test_modes;
    Alcotest.test_case "full instrumentation costs more" `Quick
      test_full_costs_more;
    Alcotest.test_case "per-call metric" `Quick test_per_call_metric;
    Alcotest.test_case "unobserved kernels absent" `Quick test_unobserved_absent;
    Alcotest.test_case "overhead positive under full" `Quick test_overhead_sign;
    Alcotest.test_case "runs reproducible by seed" `Quick test_reproducible_runs;
    Alcotest.test_case "configs are the cartesian grid" `Quick
      test_configs_cartesian;
    Alcotest.test_case "run count = configs x reps" `Quick test_run_design_count;
    Alcotest.test_case "kernel dataset grouping" `Quick test_kernel_dataset_shape;
    Alcotest.test_case "total dataset" `Quick test_total_dataset;
    Alcotest.test_case "core-hour accounting" `Quick test_core_hours;
    Alcotest.test_case "ranks-per-node override" `Quick
      test_ranks_per_node_override;
    Alcotest.test_case "default design" `Quick test_default_design;
    Alcotest.test_case "costdb covers the app routines" `Quick
      test_costdb_coverage;
    Alcotest.test_case "costdb predicates" `Quick test_costdb_predicates;
    Alcotest.test_case "collective costs monotone in p" `Quick
      test_costdb_costs_monotone_in_p;
    Alcotest.test_case "costs monotone in count" `Quick
      test_costdb_costs_monotone_in_count;
    Alcotest.test_case "costs positive" `Quick test_costdb_costs_positive;
    Alcotest.test_case "replay agrees with the tainted run" `Quick
      test_replay_matches_tainted_run;
    Alcotest.test_case "replay rejects missing parameters" `Quick
      test_replay_missing_param;
    Alcotest.test_case "replay_runs covers the grid" `Quick
      test_replay_runs_grid;
    Alcotest.test_case "kernel dataset skips unobserved runs" `Quick
      test_kernel_dataset_skips_unobserved;
    Alcotest.test_case "kernel dataset under mixed modes" `Quick
      test_kernel_dataset_mixed_modes;
    Alcotest.test_case "total dataset keeps every run" `Quick
      test_total_dataset_keeps_all_runs;
    QCheck_alcotest.to_alcotest prop_selective_cheaper_than_full;
    QCheck_alcotest.to_alcotest prop_base_total_mode_independent;
    Seeded.to_alcotest prop_noise_stream_reproducible;
    Seeded.to_alcotest prop_noise_never_negative;
    Seeded.to_alcotest prop_noise_floor_dominates_near_zero;
  ]
